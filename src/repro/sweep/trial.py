"""Per-trial metrics and the single-trial execution primitive.

:class:`TrialMetrics` is the unit of result that the sweep subsystem caches,
ships across process boundaries and aggregates into series.  It lives here
(rather than in :mod:`repro.experiments.runner`, which re-exports it for
backwards compatibility) so the sweep package never imports the experiments
package at module level — the experiments drivers import *us*.

:func:`execute_trial` reproduces one iteration of the historical
``run_series`` loop byte for byte: the workload and execution streams are the
two children of the trial's :class:`numpy.random.SeedSequence`, the heuristic
is freshly built, and the metrics are trimmed with the configured
warmup/cooldown windows.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from ..simulator.engine import SimulatorConfig, simulate
from ..simulator.metrics import SimulationResult
from ..workload.generator import WorkloadConfig, WorkloadTrace, generate_workload

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from ..heuristics.base import MappingHeuristic
    from ..pet.matrix import PETMatrix

__all__ = ["TrialMetrics", "execute_trial"]


@dataclass(frozen=True)
class TrialMetrics:
    """Headline metrics of one simulated trial."""

    robustness_percent: float
    fairness_variance: float
    total_cost: float
    cost_per_percent_on_time: float
    completed_on_time: int
    total_tasks: int
    per_type_completion_percent: tuple[float, ...]

    @classmethod
    def from_result(
        cls, result: SimulationResult, *, warmup: int, cooldown: int
    ) -> "TrialMetrics":
        per_type = result.per_type_completion_percent(warmup=warmup, cooldown=cooldown)
        return cls(
            robustness_percent=result.robustness_percent(warmup=warmup, cooldown=cooldown),
            fairness_variance=result.fairness_variance(warmup=warmup, cooldown=cooldown),
            total_cost=result.total_cost(),
            cost_per_percent_on_time=result.cost_per_percent_on_time(
                warmup=warmup, cooldown=cooldown
            ),
            completed_on_time=result.completed_on_time(warmup=warmup, cooldown=cooldown),
            total_tasks=len(result.tasks),
            per_type_completion_percent=tuple(float(x) for x in per_type),
        )

    # ------------------------------------------------------------------
    # JSON round-trip used by the on-disk result cache.
    def to_payload(self) -> dict[str, object]:
        return asdict(self)

    @classmethod
    def from_payload(cls, payload: Mapping[str, object]) -> "TrialMetrics":
        return cls(
            robustness_percent=float(payload["robustness_percent"]),
            fairness_variance=float(payload["fairness_variance"]),
            total_cost=float(payload["total_cost"]),
            cost_per_percent_on_time=float(payload["cost_per_percent_on_time"]),
            completed_on_time=int(payload["completed_on_time"]),
            total_tasks=int(payload["total_tasks"]),
            per_type_completion_percent=tuple(
                float(x) for x in payload["per_type_completion_percent"]
            ),
        )


def execute_trial(
    *,
    pet: "PETMatrix",
    heuristic: "MappingHeuristic",
    workload: WorkloadConfig | None,
    trial_seed: np.random.SeedSequence,
    sim_config: SimulatorConfig,
    machine_prices: Sequence[float] | None = None,
    warmup: int,
    cooldown: int,
    trace: WorkloadTrace | None = None,
) -> TrialMetrics:
    """Run one workload trial and distil it into :class:`TrialMetrics`.

    ``trial_seed`` is the trial's child of the point's master
    :class:`~numpy.random.SeedSequence`; its own two children seed the
    workload and execution streams, exactly as the serial runner always did.

    When ``trace`` is given (trace replay) the recorded trace is fed to the
    simulator unchanged for *every* trial; the workload stream is still
    spawned — keeping the execution stream bit-identical whether a trace
    was replayed or synthesised — but never drawn from.
    """
    workload_seed, execution_seed = trial_seed.spawn(2)
    if trace is None:
        if workload is None:
            raise ValueError("either a workload config or a trace is required")
        trace = generate_workload(
            workload, pet, rng=np.random.default_rng(workload_seed)
        )
    elif trace.num_task_types > pet.num_task_types:
        # Fail before the simulator dereferences an out-of-range PET row —
        # this is where a replayed trace and the PET first meet, so every
        # entry point (driver, CLI, programmatic SweepSpec.from_traces)
        # inherits the check.
        raise ValueError(
            f"trace uses {trace.num_task_types} task types but the PET "
            f"only has {pet.num_task_types}"
        )
    result = simulate(
        pet,
        heuristic,
        trace,
        config=sim_config,
        machine_prices=machine_prices,
        rng=np.random.default_rng(execution_seed),
    )
    return TrialMetrics.from_result(result, warmup=warmup, cooldown=cooldown)
