"""Declarative sweep specifications.

A sweep is described entirely by *data*: a :class:`SweepSpec` is a tuple of
:class:`SweepPoint`, each of which names a PET matrix (:class:`PETSpec`), a
mapping heuristic (:class:`HeuristicSpec`), a workload configuration and the
cross-cutting :class:`~repro.experiments.config.ExperimentConfig`.  Because a
point is plain frozen-dataclass data it can be

* pickled to a ``ProcessPoolExecutor`` worker, which rebuilds the PET and the
  heuristic locally;
* hashed into a stable content address (:func:`cache_key`) so repeated or
  interrupted sweeps resume from the on-disk result cache.

Seed discipline matches the paper's paired-comparison protocol: every point
derives its per-trial streams from ``config.seed`` via
``SeedSequence.spawn``, so heuristics evaluated at the same data point see
identical arrival traces.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from functools import lru_cache
from typing import TYPE_CHECKING, Iterator, Mapping

import numpy as np

from pathlib import Path

from ..core.batch import KERNEL_VERSION
from ..core.kernels import kernel_cache_tag
from ..heuristics.registry import HEURISTIC_NAMES, make_heuristic
from ..pet.builders import build_spec_pet, build_transcoding_pet
from ..pruning.oversubscription import OversubscriptionDetector
from ..pruning.thresholds import PruningThresholds
from ..workload.generator import WorkloadConfig
from ..workload.traces import load_trace, trace_content_hash
from ..workload.transcoding import TRACE_BUILDERS, build_named_trace

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from ..experiments.config import ExperimentConfig
    from ..heuristics.base import MappingHeuristic
    from ..pet.matrix import PETMatrix
    from ..workload.generator import WorkloadTrace

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "PETSpec",
    "HeuristicSpec",
    "TraceSpec",
    "SweepPoint",
    "SweepSpec",
    "cache_key",
    "point_payload",
    "spawn_trial_seeds",
    "trace_for",
]


def spawn_trial_seeds(seed: int, trials: int) -> list[np.random.SeedSequence]:
    """The per-trial seed sequences derived from one master seed.

    This is THE seed-derivation invariant of the subsystem: both the serial
    loop and the parallel workers obtain trial *k*'s streams from
    ``spawn_trial_seeds(config.seed, config.trials)[k]``, so results are
    bit-identical for every ``jobs`` setting.  ``SeedSequence.spawn`` is
    deterministic in the parent's entropy and spawn position, which is what
    makes recomputing the list in each worker safe.
    """
    master = np.random.SeedSequence(seed)
    return master.spawn(trials)

#: Bumped whenever the semantics of a cached artefact change; part of every
#: content address so stale artefacts are simply never looked up again.
#: The scoring/chain-kernel semantics are versioned separately: every
#: content address also folds in :data:`repro.core.batch.KERNEL_VERSION`,
#: so a kernel change that could alter simulated values invalidates cached
#: results without touching the artefact schema.
CACHE_SCHEMA_VERSION = 1

#: PET kinds understood by :meth:`PETSpec.build`.
PET_KINDS: tuple[str, ...] = ("spec", "transcoding")

#: Heuristics whose constructors accept pruning-specific knobs (detector,
#: ablation switches); for the baselines those fields must stay at defaults.
_PRUNING_HEURISTICS = frozenset({"PAM", "PAMF"})


@dataclass(frozen=True)
class PETSpec:
    """Names a PET matrix by builder kind + seed instead of carrying it.

    The matrix itself is hundreds of sampled PMFs; rebuilding it from the
    seed in each worker process is cheap, deterministic and keeps sweep
    points tiny when pickled or hashed.
    """

    kind: str = "spec"
    seed: int = 2019

    def __post_init__(self) -> None:
        if self.kind not in PET_KINDS:
            raise ValueError(f"unknown PET kind {self.kind!r}; expected one of {PET_KINDS}")

    def build(self) -> "PETMatrix":
        if self.kind == "spec":
            return build_spec_pet(rng=self.seed)
        return build_transcoding_pet(rng=self.seed)


@dataclass(frozen=True)
class HeuristicSpec:
    """Declarative recipe for one mapping heuristic.

    Covers everything the figure drivers and ablation benchmarks configure:
    the paper name, pruning thresholds, the PAMF fairness factor, the
    oversubscription-detector parameters swept in Figure 4, and the
    deferring/dropping ablation switches.
    """

    name: str
    thresholds: PruningThresholds | None = None
    fairness_factor: float = 0.05
    #: Detector lambda (Figure 4); ``None`` keeps the constructor default.
    ewma_weight: float | None = None
    #: Schmitt-trigger separation; 0.0 is the single-threshold "default" toggle.
    schmitt_separation: float | None = None
    enable_dropping: bool = True
    enable_deferring: bool = True

    def __post_init__(self) -> None:
        key = self.name.strip().upper()
        if key not in HEURISTIC_NAMES:
            raise ValueError(f"unknown heuristic {self.name!r}; expected one of {HEURISTIC_NAMES}")
        object.__setattr__(self, "name", key)
        if key not in _PRUNING_HEURISTICS:
            if self.ewma_weight is not None or self.schmitt_separation is not None:
                raise ValueError(f"{key} takes no oversubscription detector")
            if not (self.enable_dropping and self.enable_deferring):
                raise ValueError(f"{key} has no pruning stages to ablate")

    def build(self, num_task_types: int) -> "MappingHeuristic":
        """Construct a fresh heuristic instance (one per trial)."""
        kwargs: dict[str, object] = {}
        if self.ewma_weight is not None or self.schmitt_separation is not None:
            detector_kwargs: dict[str, float] = {}
            if self.ewma_weight is not None:
                detector_kwargs["ewma_weight"] = self.ewma_weight
            if self.schmitt_separation is not None:
                detector_kwargs["schmitt_separation"] = self.schmitt_separation
            kwargs["detector"] = OversubscriptionDetector(**detector_kwargs)
        if not self.enable_dropping:
            kwargs["enable_dropping"] = False
        if not self.enable_deferring:
            kwargs["enable_deferring"] = False
        return make_heuristic(
            self.name,
            num_task_types=num_task_types,
            thresholds=self.thresholds,
            fairness_factor=self.fairness_factor,
            **kwargs,
        )


@dataclass(frozen=True)
class TraceSpec:
    """Declarative handle for a recorded or named workload trace.

    A sibling of :class:`PETSpec`: instead of carrying the trace (hundreds
    of task records), a point names it either by **file** (a JSON trace
    written by :func:`repro.workload.traces.save_trace` — e.g. the shipped
    ``examples/transcoding_660.trace.json`` or a trace captured from a real
    system) or by **builder** (a registered deterministic generator such as
    ``"transcoding-660"`` plus its seed).  Workers resolve the handle
    locally; the content address folds in the *canonical content hash* of
    the resolved trace for files — editing the file invalidates cached
    results, while reformatting it does not — and the (builder, seed,
    num_tasks) triple for builders.

    Replay semantics match the paper's paired-comparison protocol: every
    trial of a trace-backed point replays the *identical* arrival trace;
    only the execution-time sampling stream differs per trial.
    """

    path: str | None = None
    builder: str | None = None
    seed: int = 2019
    num_tasks: int | None = None

    def __post_init__(self) -> None:
        if (self.path is None) == (self.builder is None):
            raise ValueError("exactly one of path or builder is required")
        if self.path is not None:
            object.__setattr__(self, "path", str(self.path))
        if self.builder is not None and self.builder not in TRACE_BUILDERS:
            raise ValueError(
                f"unknown trace builder {self.builder!r}; expected one of "
                f"{sorted(TRACE_BUILDERS)}"
            )
        if self.num_tasks is not None and self.num_tasks <= 0:
            raise ValueError("num_tasks must be positive")

    def resolve(self) -> "WorkloadTrace":
        """Load (file) or build (named builder) the actual workload trace."""
        if self.path is not None:
            return load_trace(Path(self.path))
        return build_named_trace(
            self.builder, seed=self.seed, num_tasks=self.num_tasks
        )

    def fingerprint(self) -> dict[str, object]:
        """Content identity folded into the sweep cache key.

        For a file trace this is the canonical content hash of the resolved
        payload (path-independent: moving or reformatting the file keeps
        cached results valid; changing any task invalidates them).  The
        hash is memoised per ``(path, mtime, size)`` — ``cache_key`` is
        computed several times per point (cache lookup, store, artefact
        payload), and re-reading the file each time would dominate replay
        sweeps over large captured traces.
        """
        if self.path is not None:
            stat = Path(self.path).stat()
            return {
                "trace_sha256": _file_trace_hash(
                    self.path, stat.st_mtime_ns, stat.st_size
                )
            }
        return {
            "builder": self.builder,
            "seed": self.seed,
            "num_tasks": self.num_tasks,
        }


def trace_for(spec: TraceSpec) -> "WorkloadTrace":
    """Per-process memo of resolved workload traces.

    A point's trials all replay the same trace, every heuristic at the
    same trace shares it, and the content-hash fingerprint is computed
    over the same parsed object — so each file is read and validated once
    per process.  File-backed specs are memoised per ``(path, mtime,
    size)``, so editing a trace file in place serves the new content
    rather than a stale cached object (which would otherwise be stored
    under the *new* content hash, poisoning the result cache).
    """
    if spec.path is not None:
        stat = Path(spec.path).stat()
        return _trace_for_file(spec.path, stat.st_mtime_ns, stat.st_size)
    return _trace_for_builder(spec)


@lru_cache(maxsize=16)
def _trace_for_file(path: str, mtime_ns: int, size: int) -> "WorkloadTrace":
    return load_trace(Path(path))


@lru_cache(maxsize=16)
def _trace_for_builder(spec: TraceSpec) -> "WorkloadTrace":
    return spec.resolve()


@lru_cache(maxsize=64)
def _file_trace_hash(path: str, mtime_ns: int, size: int) -> str:
    """Canonical content hash of a trace file, memoised per file version.

    Shares the parsed trace with :func:`trace_for` (same memo key), so
    hashing never re-reads a file the resolver already loaded.
    """
    return trace_content_hash(_trace_for_file(path, mtime_ns, size))


@dataclass(frozen=True)
class SweepPoint:
    """One data point of a sweep: everything needed to run its trials.

    ``label`` is presentation-only and deliberately excluded from the content
    address, so relabelling a grid never invalidates cached results.

    The workload is either synthesised per trial from ``workload`` or
    replayed from ``trace`` (exactly one must be set); a trace-backed point
    feeds the identical arrival trace to every trial and heuristic.
    """

    label: str
    pet: PETSpec
    heuristic: HeuristicSpec
    workload: WorkloadConfig | None
    config: "ExperimentConfig"
    machine_prices: tuple[float, ...] | None = None
    evict_executing_at_deadline: bool = True
    trace: TraceSpec | None = None

    def __post_init__(self) -> None:
        if (self.workload is None) == (self.trace is None):
            raise ValueError("exactly one of workload or trace is required")
        if self.machine_prices is not None:
            object.__setattr__(
                self, "machine_prices", tuple(float(p) for p in self.machine_prices)
            )

    # ------------------------------------------------------------------
    def trial_seeds(self) -> list[np.random.SeedSequence]:
        """The per-trial seed sequences, identical for every jobs setting."""
        return spawn_trial_seeds(self.config.seed, self.config.trials)

    def cache_key(self) -> str:
        return cache_key(self)


def point_payload(point: SweepPoint) -> dict[str, object]:
    """Canonical JSON-able description of a point's *content* (no label).

    The ``trace`` key only appears for trace-backed points so that every
    pre-existing synthetic-workload cache key is unchanged.  The same
    back-compat discipline governs the two PR-8 config fields:

    * ``kernel_backend`` never appears inside ``config`` — the backend is
      folded into the ``engine`` tag instead
      (:func:`repro.core.kernels.kernel_cache_tag`), where the ``numpy``
      reference keeps the historical bare integer so pre-existing cache
      entries stay addressable while other backends get composite
      ``"<version>+<backend>"`` tags that can never collide with it;
    * ``batch_window`` appears only when non-zero, so per-event
      (``window=0``) keys are unchanged and batched-round results never
      collide with them.
    """
    config_payload = asdict(point.config)
    config_payload.pop("kernel_backend", None)
    if not config_payload.get("batch_window"):
        config_payload.pop("batch_window", None)
    payload: dict[str, object] = {
        "schema": CACHE_SCHEMA_VERSION,
        "engine": kernel_cache_tag(
            point.config.kernel_backend, version=KERNEL_VERSION
        ),
        "pet": asdict(point.pet),
        "heuristic": asdict(point.heuristic),
        "workload": asdict(point.workload) if point.workload is not None else None,
        "config": config_payload,
        "machine_prices": list(point.machine_prices)
        if point.machine_prices is not None
        else None,
        "evict_executing_at_deadline": point.evict_executing_at_deadline,
    }
    if point.trace is not None:
        payload["trace"] = point.trace.fingerprint()
    return payload


def cache_key(point: SweepPoint) -> str:
    """Stable content address of a point: SHA-256 over canonical JSON.

    Stable across processes and platforms (unlike builtin ``hash``), and
    sensitive to every config field, the seed, and the scoring-kernel
    version tag by construction — bumping
    :data:`repro.core.batch.KERNEL_VERSION` therefore invalidates every
    previously cached result.
    """
    canonical = json.dumps(point_payload(point), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class SweepSpec:
    """An ordered collection of sweep points (one experiment grid).

    ``backend`` names the default execution backend for this sweep (one of
    :data:`repro.sweep.backends.BACKEND_NAMES`); callers of
    :func:`~repro.sweep.executor.run_sweep` can override it.  It is a pure
    execution preference — where trials run, never what they compute — so
    it is deliberately *not* part of any point's content address: switching
    backends keeps every cached result valid.  The default ``"process"``
    preserves the historical behaviour (in-process for ``jobs=1``, a local
    process pool otherwise).
    """

    points: tuple[SweepPoint, ...] = field(default_factory=tuple)
    backend: str = "process"

    def __post_init__(self) -> None:
        object.__setattr__(self, "points", tuple(self.points))
        from .backends import BACKEND_NAMES  # runtime-only: avoids a cycle

        if self.backend not in BACKEND_NAMES:
            raise ValueError(
                f"unknown backend {self.backend!r}; expected one of {BACKEND_NAMES}"
            )

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self) -> Iterator[SweepPoint]:
        return iter(self.points)

    @property
    def total_trials(self) -> int:
        return sum(point.config.trials for point in self.points)

    @classmethod
    def from_grid(
        cls,
        *,
        pet: PETSpec,
        heuristics: Mapping[str, HeuristicSpec],
        workloads: Mapping[str, WorkloadConfig],
        config: "ExperimentConfig",
        machine_prices: tuple[float, ...] | None = None,
        evict_executing_at_deadline: bool = True,
        label_format: str = "{workload},{heuristic}",
        backend: str = "process",
    ) -> "SweepSpec":
        """Cross product of workloads x heuristics (workload-major order).

        The iteration order matches the historical figure drivers: for each
        workload level, every heuristic in turn.
        """
        points = tuple(
            SweepPoint(
                label=label_format.format(workload=wl_label, heuristic=h_label),
                pet=pet,
                heuristic=heuristic,
                workload=workload,
                config=config,
                machine_prices=machine_prices,
                evict_executing_at_deadline=evict_executing_at_deadline,
            )
            for wl_label, workload in workloads.items()
            for h_label, heuristic in heuristics.items()
        )
        return cls(points=points, backend=backend)

    @classmethod
    def from_traces(
        cls,
        *,
        pet: PETSpec,
        heuristics: Mapping[str, HeuristicSpec],
        traces: Mapping[str, "TraceSpec"],
        config: "ExperimentConfig",
        machine_prices: tuple[float, ...] | None = None,
        evict_executing_at_deadline: bool = True,
        label_format: str = "{trace},{heuristic}",
        backend: str = "process",
    ) -> "SweepSpec":
        """Cross product of recorded traces x heuristics (trace-major order).

        The trace-backed sibling of :meth:`from_grid`: every heuristic
        replays the identical recorded arrival trace (the paper's paired
        replay protocol), and results flow through the same cache.
        """
        points = tuple(
            SweepPoint(
                label=label_format.format(trace=tr_label, heuristic=h_label),
                pet=pet,
                heuristic=heuristic,
                workload=None,
                config=config,
                machine_prices=machine_prices,
                evict_executing_at_deadline=evict_executing_at_deadline,
                trace=trace,
            )
            for tr_label, trace in traces.items()
            for h_label, heuristic in heuristics.items()
        )
        return cls(points=points, backend=backend)
