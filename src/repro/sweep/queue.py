"""Durable SQLite work queue shared by detached sweep workers.

One queue directory holds one SQLite database (``queue.sqlite``) whose rows
are single trials: a row is keyed by ``"{point_cache_key}:{trial_index}"`` —
the *same* content address :class:`~repro.sweep.cache.ResultCache` shards
artefacts by, extended with the trial position — so enqueueing a sweep twice
is idempotent, and a row completed by any worker on any host is a valid
result for every future sweep of the same point.

The row lifecycle is a four-state machine::

    pending ──claim──▶ leased ──complete──▶ done
       ▲                 │
       │   lease expired │ attempts < max_attempts
       └─────────────────┤
                         │ attempts >= max_attempts
                         └──────────────────────────▶ dead

* **claim** is atomic (``BEGIN IMMEDIATE``): exactly one worker wins a row,
  stamping its owner id and a lease deadline.  Expired leases are claimable
  directly, so a SIGKILL'd worker's trial is picked up by any survivor.
* **complete** stores the trial's :class:`~repro.sweep.trial.TrialMetrics`
  as JSON in the row itself; completions are guarded by the lease owner, and
  a zombie worker completing after losing its lease is silently ignored
  (the result would be bit-identical anyway — trials are deterministic in
  the row key).
* **attempts** counts claims; a row that keeps expiring (or failing) moves
  to ``dead`` once ``max_attempts`` claims have been burned, so one
  poisonous trial can never wedge the queue.
* **priority** orders claims (ascending, ties broken FIFO).  The default of
  ``0.0`` for every row degenerates to pure FIFO, so existing queues and
  producers are unaffected; the queue backend sets it to the point's mean
  completed-trial wall seconds (shortest-expected-trial-first), which gets
  cheap points — and therefore whole figure data points — finished and
  reported earliest.  Completed rows record their measured ``seconds`` so
  the hints improve as a queue is reused.

Every operation opens its own short-lived connection with a generous busy
timeout, which keeps the queue safe under many concurrent worker processes
— including workers on different hosts sharing the queue directory over a
filesystem with working POSIX locks (SQLite's locking requirement).
"""

from __future__ import annotations

import json
import os
import pickle
import socket
import sqlite3
import time
from contextlib import closing
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Sequence

from ..obs.telemetry import active as obs_active
from .trial import TrialMetrics

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from .spec import SweepPoint

__all__ = [
    "DEFAULT_LEASE_SECONDS",
    "DEFAULT_MAX_ATTEMPTS",
    "TASK_STATES",
    "ClaimedTask",
    "QueueStatus",
    "QueueTask",
    "WorkQueue",
    "WorkerLease",
    "task_key_for",
    "worker_id",
]

#: Seconds a claim stays valid without renewal; workers renew at a third of
#: this, so only a crashed (not merely slow) worker loses its lease.
DEFAULT_LEASE_SECONDS = 60.0

#: Claims burned before a row is declared dead (first claim included).
DEFAULT_MAX_ATTEMPTS = 3

#: The row states, in lifecycle order.
TASK_STATES: tuple[str, ...] = ("pending", "leased", "done", "dead")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS tasks (
    task_key         TEXT PRIMARY KEY,
    point_key        TEXT NOT NULL,
    trial_index      INTEGER NOT NULL,
    label            TEXT NOT NULL,
    point_blob       BLOB NOT NULL,
    status           TEXT NOT NULL DEFAULT 'pending',
    attempts         INTEGER NOT NULL DEFAULT 0,
    max_attempts     INTEGER NOT NULL,
    lease_owner      TEXT,
    lease_expires_at REAL,
    result_json      TEXT,
    error            TEXT,
    enqueued_at      REAL NOT NULL,
    updated_at       REAL NOT NULL,
    priority         REAL NOT NULL DEFAULT 0.0,
    seconds          REAL
);
CREATE INDEX IF NOT EXISTS tasks_status ON tasks (status, lease_expires_at);
"""

#: Columns added after the first released schema, with their ALTER clauses —
#: applied lazily so a queue database created by an older version keeps
#: working (new columns arrive with their FIFO-compatible defaults).
_MIGRATIONS: tuple[tuple[str, str], ...] = (
    ("priority", "ALTER TABLE tasks ADD COLUMN priority REAL NOT NULL DEFAULT 0.0"),
    ("seconds", "ALTER TABLE tasks ADD COLUMN seconds REAL"),
)


def task_key_for(point: "SweepPoint", trial_index: int) -> str:
    """Content address of one trial: the point's cache key + trial position."""
    return f"{point.cache_key()}:{trial_index:05d}"


def worker_id() -> str:
    """Human-readable owner id for one worker process (``host:pid``)."""
    return f"{socket.gethostname()}:{os.getpid()}"


@dataclass(frozen=True)
class QueueTask:
    """One row of the queue, as observed at a point in time."""

    task_key: str
    point_key: str
    trial_index: int
    label: str
    status: str
    attempts: int
    max_attempts: int
    lease_owner: str | None
    lease_expires_at: float | None
    error: str | None
    priority: float = 0.0
    seconds: float | None = None


@dataclass(frozen=True)
class ClaimedTask:
    """A leased trial handed to a worker: the rebuilt point plus bookkeeping."""

    task_key: str
    point: "SweepPoint"
    trial_index: int
    attempts: int
    lease_expires_at: float


@dataclass(frozen=True)
class WorkerLease:
    """Aggregate view of one worker's active leases (a remote heartbeat)."""

    owner: str
    tasks: int
    lease_expires_at: float


@dataclass(frozen=True)
class QueueStatus:
    """Counts per state plus per-worker lease heartbeats."""

    pending: int = 0
    leased: int = 0
    done: int = 0
    dead: int = 0
    workers: tuple[WorkerLease, ...] = ()

    @property
    def total(self) -> int:
        return self.pending + self.leased + self.done + self.dead

    @property
    def unfinished(self) -> int:
        """Rows that could still produce a result (pending or leased)."""
        return self.pending + self.leased


class WorkQueue:
    """Durable trial queue rooted at a directory (``<dir>/queue.sqlite``)."""

    def __init__(
        self,
        queue_dir: str | Path,
        *,
        lease_seconds: float = DEFAULT_LEASE_SECONDS,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        busy_timeout: float = 30.0,
    ) -> None:
        if lease_seconds <= 0:
            raise ValueError("lease_seconds must be positive")
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        self.queue_dir = Path(queue_dir)
        self.lease_seconds = float(lease_seconds)
        self.max_attempts = int(max_attempts)
        self.busy_timeout = float(busy_timeout)
        self.queue_dir.mkdir(parents=True, exist_ok=True)
        self.db_path = self.queue_dir / "queue.sqlite"
        with closing(self._connect()) as conn:
            conn.executescript(_SCHEMA)
            present = {row[1] for row in conn.execute("PRAGMA table_info(tasks)")}
            for column, clause in _MIGRATIONS:
                if column not in present:
                    conn.execute(clause)
            conn.commit()

    # ------------------------------------------------------------------
    def _connect(self) -> sqlite3.Connection:
        conn = sqlite3.connect(self.db_path, timeout=self.busy_timeout)
        conn.isolation_level = None  # explicit BEGIN/COMMIT only
        return conn

    # ------------------------------------------------------------------
    # Producer side (the QueueBackend frontend).
    def enqueue(self, point: "SweepPoint", trial_index: int, *, priority: float = 0.0) -> str:
        """Add one trial; a no-op if the row (any state) already exists.

        Idempotence is what makes re-running an interrupted sweep safe: rows
        already ``done`` keep their result and are served straight back.
        ``priority`` orders claims ascending (ties FIFO); the 0.0 default
        keeps the queue pure FIFO.
        """
        key = task_key_for(point, trial_index)
        now = time.time()
        with closing(self._connect()) as conn:
            conn.execute(
                "INSERT INTO tasks (task_key, point_key, trial_index, label, point_blob,"
                " status, max_attempts, enqueued_at, updated_at, priority)"
                " VALUES (?, ?, ?, ?, ?, 'pending', ?, ?, ?, ?)"
                " ON CONFLICT(task_key) DO NOTHING",
                (
                    key,
                    point.cache_key(),
                    trial_index,
                    point.label,
                    pickle.dumps(point),
                    self.max_attempts,
                    now,
                    now,
                    float(priority),
                ),
            )
            conn.commit()
        return key

    def enqueue_point(self, point: "SweepPoint", *, priority: float = 0.0) -> list[str]:
        """Enqueue every trial of one point; returns the row keys in order."""
        return [
            self.enqueue(point, trial, priority=priority)
            for trial in range(point.config.trials)
        ]

    # ------------------------------------------------------------------
    # Worker side.
    def claim(self, owner: str, *, now: float | None = None) -> ClaimedTask | None:
        """Atomically lease the oldest claimable row, or return ``None``.

        Claimable means ``pending``, or ``leased`` with an expired lease
        (crash recovery).  Rows whose claims are exhausted are flipped to
        ``dead`` instead of being handed out.  Rows are served in ascending
        ``priority`` order (shortest-expected-trial-first when the backend
        has timing hints), FIFO within a priority.
        """
        now = time.time() if now is None else now
        with closing(self._connect()) as conn:
            while True:
                conn.execute("BEGIN IMMEDIATE")
                row = conn.execute(
                    "SELECT task_key, point_blob, trial_index, attempts, max_attempts"
                    " FROM tasks"
                    " WHERE status = 'pending'"
                    "    OR (status = 'leased' AND lease_expires_at <= ?)"
                    " ORDER BY priority, enqueued_at, task_key LIMIT 1",
                    (now,),
                ).fetchone()
                if row is None:
                    conn.execute("COMMIT")
                    return None
                key, blob, trial_index, attempts, max_attempts = row
                if attempts >= max_attempts:
                    conn.execute(
                        "UPDATE tasks SET status = 'dead', lease_owner = NULL,"
                        " lease_expires_at = NULL, updated_at = ?,"
                        " error = COALESCE(error, 'lease expired with attempts exhausted')"
                        " WHERE task_key = ?",
                        (now, key),
                    )
                    conn.execute("COMMIT")
                    obs_active().count("queue.dead_lettered")
                    continue
                expires = now + self.lease_seconds
                conn.execute(
                    "UPDATE tasks SET status = 'leased', lease_owner = ?,"
                    " lease_expires_at = ?, attempts = attempts + 1, updated_at = ?"
                    " WHERE task_key = ?",
                    (owner, expires, now, key),
                )
                conn.execute("COMMIT")
                obs_active().count("queue.claims")
                return ClaimedTask(
                    task_key=key,
                    point=pickle.loads(blob),
                    trial_index=int(trial_index),
                    attempts=int(attempts) + 1,
                    lease_expires_at=expires,
                )

    def renew(self, task_key: str, owner: str) -> bool:
        """Extend a live lease; returns ``False`` if the lease was lost."""
        now = time.time()
        with closing(self._connect()) as conn:
            cursor = conn.execute(
                "UPDATE tasks SET lease_expires_at = ?, updated_at = ?"
                " WHERE task_key = ? AND status = 'leased' AND lease_owner = ?",
                (now + self.lease_seconds, now, task_key, owner),
            )
            conn.commit()
            renewed = cursor.rowcount == 1
            if renewed:
                obs_active().count("queue.lease_renewals")
            return renewed

    def complete(
        self,
        task_key: str,
        owner: str,
        metrics: TrialMetrics,
        *,
        seconds: float | None = None,
    ) -> bool:
        """Store a finished trial's metrics; owner-guarded against zombies.

        ``seconds`` records the trial's measured wall time, which future
        enqueues of the same point read back as a priority hint.
        """
        now = time.time()
        with closing(self._connect()) as conn:
            cursor = conn.execute(
                "UPDATE tasks SET status = 'done', result_json = ?, error = NULL,"
                " lease_owner = NULL, lease_expires_at = NULL, updated_at = ?,"
                " seconds = ?"
                " WHERE task_key = ? AND status = 'leased' AND lease_owner = ?",
                (json.dumps(metrics.to_payload()), now, seconds, task_key, owner),
            )
            conn.commit()
            completed = cursor.rowcount == 1
            if completed:
                obs = obs_active()
                obs.count("queue.completions")
                if seconds is not None:
                    obs.observe_ns("queue.trial", int(seconds * 1e9))
            return completed

    def release(self, task_key: str, owner: str) -> bool:
        """Hand a leased row straight back without burning its attempt.

        For orderly give-backs (an interrupted worker, a clean shutdown):
        the row returns to ``pending`` immediately and the claim that is
        being abandoned is refunded, so a user stopping and restarting
        workers can never dead-letter a healthy trial.
        """
        now = time.time()
        with closing(self._connect()) as conn:
            cursor = conn.execute(
                "UPDATE tasks SET status = 'pending', lease_owner = NULL,"
                " lease_expires_at = NULL, attempts = attempts - 1, updated_at = ?"
                " WHERE task_key = ? AND status = 'leased' AND lease_owner = ?",
                (now, task_key, owner),
            )
            conn.commit()
            released = cursor.rowcount == 1
            if released:
                obs_active().count("queue.releases")
            return released

    def fail(self, task_key: str, owner: str, error: str) -> bool:
        """Record a trial failure: bounded retry, then the dead-letter state."""
        now = time.time()
        with closing(self._connect()) as conn:
            conn.execute("BEGIN IMMEDIATE")
            row = conn.execute(
                "SELECT attempts, max_attempts FROM tasks"
                " WHERE task_key = ? AND status = 'leased' AND lease_owner = ?",
                (task_key, owner),
            ).fetchone()
            if row is None:
                conn.execute("COMMIT")
                return False
            attempts, max_attempts = row
            next_state = "dead" if attempts >= max_attempts else "pending"
            conn.execute(
                "UPDATE tasks SET status = ?, error = ?, lease_owner = NULL,"
                " lease_expires_at = NULL, updated_at = ? WHERE task_key = ?",
                (next_state, error, now, task_key),
            )
            conn.execute("COMMIT")
            obs = obs_active()
            obs.count("queue.failures")
            if next_state == "dead":
                obs.count("queue.dead_lettered")
            return True

    # ------------------------------------------------------------------
    # Maintenance / observation (frontend, CLI).
    def recover_expired(self, *, now: float | None = None) -> int:
        """Re-enqueue expired leases (or dead-letter exhausted ones).

        :meth:`claim` would pick expired rows up anyway; this exists so the
        frontend and ``repro queue requeue`` can surface recovery eagerly
        (and so heartbeat displays never show a long-gone worker as live).
        """
        now = time.time() if now is None else now
        with closing(self._connect()) as conn:
            conn.execute("BEGIN IMMEDIATE")
            dead = conn.execute(
                "UPDATE tasks SET status = 'dead', lease_owner = NULL,"
                " lease_expires_at = NULL, updated_at = ?,"
                " error = COALESCE(error, 'lease expired with attempts exhausted')"
                " WHERE status = 'leased' AND lease_expires_at <= ? AND attempts >= max_attempts",
                (now, now),
            ).rowcount
            recovered = conn.execute(
                "UPDATE tasks SET status = 'pending', lease_owner = NULL,"
                " lease_expires_at = NULL, updated_at = ?"
                " WHERE status = 'leased' AND lease_expires_at <= ?",
                (now, now),
            ).rowcount
            conn.execute("COMMIT")
        obs = obs_active()
        obs.count("queue.recovered", recovered)
        obs.count("queue.dead_lettered", dead)
        return recovered + dead

    def requeue(self, *, include_dead: bool = False) -> int:
        """Move expired leases (and optionally dead rows) back to pending.

        Requeued dead rows get a fresh attempt budget — this is the manual
        "I fixed the bug, try again" escape hatch.
        """
        recovered = self.recover_expired()
        if not include_dead:
            return recovered
        now = time.time()
        with closing(self._connect()) as conn:
            cursor = conn.execute(
                "UPDATE tasks SET status = 'pending', attempts = 0, error = NULL,"
                " updated_at = ? WHERE status = 'dead'",
                (now,),
            )
            conn.commit()
            obs_active().count("queue.requeued_dead", cursor.rowcount)
            return recovered + cursor.rowcount

    def drain(self, *, done_only: bool = False) -> int:
        """Delete rows (all of them, or just the completed ones)."""
        with closing(self._connect()) as conn:
            if done_only:
                cursor = conn.execute("DELETE FROM tasks WHERE status = 'done'")
            else:
                cursor = conn.execute("DELETE FROM tasks")
            conn.commit()
            return cursor.rowcount

    def status(self) -> QueueStatus:
        """Counts per state plus per-worker active-lease heartbeats."""
        with closing(self._connect()) as conn:
            counts = dict(
                conn.execute("SELECT status, COUNT(*) FROM tasks GROUP BY status")
            )
            # NULL owners/expiries (interrupted writes, manual surgery) must
            # not crash observation; they render as already-expired leases.
            workers = tuple(
                WorkerLease(
                    owner=owner,
                    tasks=int(tasks),
                    lease_expires_at=float(expires) if expires is not None else 0.0,
                )
                for owner, tasks, expires in conn.execute(
                    "SELECT lease_owner, COUNT(*), MAX(lease_expires_at) FROM tasks"
                    " WHERE status = 'leased' GROUP BY lease_owner ORDER BY lease_owner"
                )
            )
        return QueueStatus(
            pending=int(counts.get("pending", 0)),
            leased=int(counts.get("leased", 0)),
            done=int(counts.get("done", 0)),
            dead=int(counts.get("dead", 0)),
            workers=workers,
        )

    def tasks(self, task_keys: Iterable[str] | None = None) -> list[QueueTask]:
        """Observe rows (all, or a subset by key), without their results."""
        base = (
            "SELECT task_key, point_key, trial_index, label, status, attempts,"
            " max_attempts, lease_owner, lease_expires_at, error, priority, seconds"
            " FROM tasks"
        )
        rows: list[tuple] = []
        with closing(self._connect()) as conn:
            if task_keys is None:
                rows = list(conn.execute(base + " ORDER BY enqueued_at, task_key"))
            else:
                for chunk in _chunked(list(task_keys), 500):
                    marks = ",".join("?" * len(chunk))
                    rows.extend(
                        conn.execute(base + f" WHERE task_key IN ({marks})", chunk)
                    )
        return [
            QueueTask(
                task_key=key,
                point_key=point_key,
                trial_index=int(trial_index),
                label=label,
                status=status,
                attempts=int(attempts),
                max_attempts=int(max_attempts),
                lease_owner=owner,
                lease_expires_at=expires,
                error=error,
                priority=float(priority),
                seconds=None if seconds is None else float(seconds),
            )
            for key, point_key, trial_index, label, status, attempts,
                max_attempts, owner, expires, error, priority, seconds in rows
        ]

    def timing_hints(self) -> dict[str, float]:
        """Mean measured wall seconds per point, from completed trials.

        Only ``done`` rows that recorded their duration contribute, so a
        fresh queue returns an empty mapping and every enqueue stays at the
        FIFO-default priority.
        """
        with closing(self._connect()) as conn:
            return {
                point_key: float(mean_seconds)
                for point_key, mean_seconds in conn.execute(
                    "SELECT point_key, AVG(seconds) FROM tasks"
                    " WHERE status = 'done' AND seconds IS NOT NULL"
                    " GROUP BY point_key"
                )
            }

    def results(self, task_keys: Sequence[str]) -> dict[str, TrialMetrics]:
        """Fetch the metrics of every ``done`` row among ``task_keys``."""
        out: dict[str, TrialMetrics] = {}
        with closing(self._connect()) as conn:
            for chunk in _chunked(list(task_keys), 500):
                marks = ",".join("?" * len(chunk))
                for key, payload in conn.execute(
                    "SELECT task_key, result_json FROM tasks"
                    f" WHERE status = 'done' AND task_key IN ({marks})",
                    chunk,
                ):
                    out[key] = TrialMetrics.from_payload(json.loads(payload))
        return out


def _chunked(items: list, size: int) -> Iterable[list]:
    for start in range(0, len(items), size):
        yield items[start : start + size]
