"""Pluggable execution backends for the sweep executor.

A backend owns *where* trials run; the executor owns everything else
(cache lookups, per-point assembly, progress, cache stores).  The contract
is a submit/drain lifecycle over single trials::

    backend.submit_trials(tasks)          # TrialTask = (point_index, point, trial)
    for result in backend.drain_results():  # TrialResult, completion order
        ...
    backend.cancel()  # on interrupt: undrained already-finished results
    backend.close()

Three implementations ship:

``SerialBackend``
    The historical ``jobs=1`` in-process loop — trials execute lazily
    during the drain, in submit (point-major) order.

``ProcessBackend``
    The historical ``jobs>1`` path — trials fan out over a
    ``concurrent.futures.ProcessPoolExecutor`` at single-trial granularity.

``QueueBackend``
    Trials are enqueued into a durable SQLite work queue
    (:mod:`repro.sweep.queue`) and executed by any number of detached
    ``repro worker`` processes — spawned by the backend itself and/or
    started independently, including on other hosts sharing the queue
    directory.  The backend polls for completed rows, recovers expired
    leases, surfaces worker heartbeats, and fails fast when a trial lands
    in the dead-letter state.

Every backend produces bit-identical :class:`TrialMetrics` for a given
trial because all three funnel into the same deterministic entry point
(:func:`repro.sweep.executor._execute_point_trial`, seeded by spawn
position) — backend choice is a pure performance/topology knob and is
deliberately excluded from sweep cache keys.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterator, Protocol, Sequence

from .queue import QueueStatus, WorkQueue
from .trial import TrialMetrics

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from .spec import SweepPoint

__all__ = [
    "BACKEND_NAMES",
    "Backend",
    "HeartbeatCallback",
    "ProcessBackend",
    "QueueBackend",
    "QueueTaskError",
    "SerialBackend",
    "TrialResult",
    "TrialTask",
    "make_backend",
]

#: Backend names accepted by :func:`make_backend`, ``SweepSpec.backend`` and
#: the CLI ``--backend`` flag.
BACKEND_NAMES: tuple[str, ...] = ("serial", "process", "queue")


@dataclass(frozen=True)
class TrialTask:
    """One unit of work: the sweep-point position, the point, the trial."""

    point_index: int
    point: "SweepPoint"
    trial_index: int


@dataclass(frozen=True)
class TrialResult:
    """One finished unit of work, routed back to its sweep-point slot."""

    point_index: int
    trial_index: int
    metrics: TrialMetrics


HeartbeatCallback = Callable[[QueueStatus], None]


class Backend(Protocol):
    """The executor-facing lifecycle every backend implements."""

    def submit_trials(self, tasks: Sequence[TrialTask]) -> None:
        """Accept the full set of trials to run (called exactly once)."""
        ...  # pragma: no cover - protocol

    def drain_results(self) -> Iterator[TrialResult]:
        """Yield results as trials finish, until every submitted trial did."""
        ...  # pragma: no cover - protocol

    def cancel(self) -> list[TrialResult]:
        """Stop outstanding work; return finished-but-undrained results."""
        ...  # pragma: no cover - protocol

    def close(self) -> None:
        """Release pools/processes; idempotent."""
        ...  # pragma: no cover - protocol


class QueueTaskError(RuntimeError):
    """A queued trial exhausted its attempts (dead-letter state)."""


def _run_trial(task: TrialTask) -> TrialResult:
    from .executor import _execute_point_trial  # runtime-only: avoids a cycle

    return TrialResult(
        point_index=task.point_index,
        trial_index=task.trial_index,
        metrics=_execute_point_trial(task.point, task.trial_index),
    )


class SerialBackend:
    """In-process execution in submit order (the historical ``jobs=1`` loop)."""

    def __init__(self) -> None:
        self._tasks: list[TrialTask] = []

    def submit_trials(self, tasks: Sequence[TrialTask]) -> None:
        self._tasks = list(tasks)

    def drain_results(self) -> Iterator[TrialResult]:
        while self._tasks:
            task = self._tasks.pop(0)
            yield _run_trial(task)

    def cancel(self) -> list[TrialResult]:
        self._tasks.clear()
        return []

    def close(self) -> None:
        self._tasks.clear()


class ProcessBackend:
    """Trial fan-out over a local process pool (the historical ``jobs>1``)."""

    def __init__(self, jobs: int) -> None:
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        self.jobs = jobs
        self._pool: ProcessPoolExecutor | None = None
        self._futures: dict[Future, TrialTask] = {}
        self._not_done: set[Future] = set()

    def submit_trials(self, tasks: Sequence[TrialTask]) -> None:
        self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        self._futures = {self._pool.submit(_run_trial, task): task for task in tasks}
        self._not_done = set(self._futures)

    def drain_results(self) -> Iterator[TrialResult]:
        while self._not_done:
            done, self._not_done = wait(self._not_done, return_when=FIRST_COMPLETED)
            for future in done:
                yield future.result()

    def cancel(self) -> list[TrialResult]:
        """Cancel queued trials; harvest the ones that already finished.

        Running trials are abandoned (their processes are killed on close),
        but anything the pool completed before the interrupt is handed back
        so the executor can flush finished points to the cache.
        """
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
        harvested = [
            future.result()
            for future in self._not_done
            if future.done() and not future.cancelled() and future.exception() is None
        ]
        self._not_done = set()
        return harvested

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None


class QueueBackend:
    """Durable-queue execution by detached workers (local or remote).

    ``workers`` > 0 spawns that many ``repro worker --exit-when-empty``
    processes in their own sessions, logging under
    ``<queue_dir>/logs/``; ``workers=0`` enqueues and waits for externally
    started workers (the two-terminal / multi-host mode).  Either way the
    drain loop recovers expired leases, so trials held by crashed workers
    are re-run by survivors; a row that exhausts its attempt budget raises
    :class:`QueueTaskError` naming the trial and its recorded error.

    Rows are content-addressed (point cache key + trial index), so a queue
    directory reused across runs serves already-``done`` trials instantly —
    the durable sibling of the JSON result cache.
    """

    def __init__(
        self,
        queue_dir: str | Path,
        *,
        workers: int = 0,
        lease_seconds: float | None = None,
        poll_interval: float = 0.2,
        heartbeat: HeartbeatCallback | None = None,
        heartbeat_interval: float = 5.0,
    ) -> None:
        if workers < 0:
            raise ValueError("workers must be non-negative")
        kwargs = {} if lease_seconds is None else {"lease_seconds": lease_seconds}
        self.queue = WorkQueue(queue_dir, **kwargs)
        self.workers = workers
        self.poll_interval = poll_interval
        self.heartbeat = heartbeat
        self.heartbeat_interval = heartbeat_interval
        self._tasks_by_key: dict[str, list[TrialTask]] = {}
        self._remaining: set[str] = set()
        self._spawned: list[subprocess.Popen] = []

    # ------------------------------------------------------------------
    def submit_trials(self, tasks: Sequence[TrialTask]) -> None:
        # Several sweep points can share one content address (labels are
        # excluded from cache keys), so a physical queue row may serve more
        # than one submitted task — every one of them must get the result.
        # Points the queue has timed before are prioritised
        # shortest-expected-trial-first; unknown points keep priority 0 and
        # therefore run first, FIFO (exploring beats exploiting a stale hint).
        hints = self.queue.timing_hints()
        self._tasks_by_key = {}
        for task in tasks:
            key = self.queue.enqueue(
                task.point,
                task.trial_index,
                priority=hints.get(task.point.cache_key(), 0.0),
            )
            self._tasks_by_key.setdefault(key, []).append(task)
        self._remaining = set(self._tasks_by_key)
        for index in range(self.workers):
            self._spawn_worker(index)

    def _spawn_worker(self, index: int) -> None:
        log_dir = self.queue.queue_dir / "logs"
        log_dir.mkdir(exist_ok=True)
        log_path = log_dir / f"worker-{index}.log"
        command = [
            sys.executable,
            "-m",
            "repro.cli",
            "worker",
            "--queue-dir",
            str(self.queue.queue_dir),
            "--lease-seconds",
            str(self.queue.lease_seconds),
            "--exit-when-empty",
        ]
        # The worker must import the same ``repro`` we are running (the
        # parent may have it on sys.path rather than installed), so prepend
        # our package root to the child's PYTHONPATH.
        package_root = str(Path(__file__).resolve().parents[2])
        env = dict(os.environ)
        existing = env.get("PYTHONPATH", "")
        env["PYTHONPATH"] = (
            package_root + os.pathsep + existing if existing else package_root
        )
        with open(log_path, "ab") as log:
            self._spawned.append(
                subprocess.Popen(
                    command,
                    stdout=log,
                    stderr=subprocess.STDOUT,
                    env=env,
                    start_new_session=True,  # detached: survives our signals
                )
            )

    # ------------------------------------------------------------------
    def drain_results(self) -> Iterator[TrialResult]:
        last_heartbeat = 0.0
        while self._remaining:
            for result in self._harvest(self._remaining):
                yield result
            if not self._remaining:
                break
            self.queue.recover_expired()
            status = self.queue.status()
            if status.dead:
                # Rare state, so the per-row fetch only happens once the
                # cheap aggregate says a dead row exists at all.
                self._raise_on_dead(self._remaining)
            self._check_spawned_workers(self._remaining)
            now = time.monotonic()
            if (
                self.heartbeat is not None
                and now - last_heartbeat >= self.heartbeat_interval
            ):
                self.heartbeat(status)
                last_heartbeat = now
            time.sleep(self.poll_interval)

    def _harvest(self, remaining: set[str]) -> list[TrialResult]:
        """Pop every newly ``done`` row among the keys still outstanding."""
        results = []
        for key, metrics in self.queue.results(sorted(remaining)).items():
            remaining.discard(key)
            for task in self._tasks_by_key[key]:
                results.append(
                    TrialResult(
                        point_index=task.point_index,
                        trial_index=task.trial_index,
                        metrics=metrics,
                    )
                )
        return results

    def _raise_on_dead(self, remaining: set[str]) -> None:
        dead = [
            row
            for row in self.queue.tasks(sorted(remaining))
            if row.status == "dead"
        ]
        if dead:
            first = dead[0]
            detail = (first.error or "no error recorded").strip().splitlines()[-1]
            raise QueueTaskError(
                f"{len(dead)} queued trial(s) exhausted their attempts; first: "
                f"{first.label!r} trial {first.trial_index} "
                f"({first.attempts}/{first.max_attempts} attempts) — {detail}"
            )

    def _check_spawned_workers(self, remaining: set[str]) -> None:
        """Fail fast if every worker we spawned died with work outstanding.

        Only applies when this backend spawned workers and none are left
        alive — with ``workers=0`` the contract is to wait indefinitely for
        detached workers to show up.  The trigger is a *pending* outstanding
        row specifically: ``done`` rows are simply not harvested yet (the
        workers exit once the queue settles, which can race our poll), and
        ``leased`` rows either belong to an external worker or to a crashed
        spawned one — in which case lease expiry turns them pending and we
        fail on the next poll.
        """
        if not self._spawned or any(p.poll() is None for p in self._spawned):
            return
        rows = self.queue.tasks(sorted(remaining))
        stranded = [row for row in rows if row.status == "pending"]
        if stranded:
            codes = [p.returncode for p in self._spawned]
            log_dir = self.queue.queue_dir / "logs"
            raise RuntimeError(
                f"all {len(self._spawned)} spawned workers exited (codes {codes}) "
                f"with {len(stranded)} trial(s) stranded pending; see {log_dir}/"
            )

    # ------------------------------------------------------------------
    def cancel(self) -> list[TrialResult]:
        """Harvest finished rows; leave the queue itself intact.

        Outstanding rows stay pending/leased on purpose: the queue is
        durable, so a re-run (or detached workers that keep going) resumes
        exactly where the interrupted sweep stopped.
        """
        return self._harvest(self._remaining)

    def close(self) -> None:
        for process in self._spawned:
            if process.poll() is None:
                process.terminate()
        deadline = time.monotonic() + 5.0
        for process in self._spawned:
            if process.poll() is None:
                try:
                    process.wait(timeout=max(0.1, deadline - time.monotonic()))
                except subprocess.TimeoutExpired:  # pragma: no cover - defensive
                    process.kill()
        self._spawned.clear()


def make_backend(
    name: str | None,
    *,
    jobs: int = 1,
    queue_dir: str | Path | None = None,
    queue_workers: int | None = None,
    lease_seconds: float | None = None,
    heartbeat: HeartbeatCallback | None = None,
) -> Backend:
    """Resolve a backend name (plus knobs) into a backend instance.

    ``process`` with ``jobs=1`` resolves to :class:`SerialBackend`: a
    one-worker pool computes identical results but pays IPC and spawn
    overhead for nothing, and collapsing it keeps the historical ``jobs=1``
    fast path intact under the default ``backend="process"``.

    ``queue_workers=None`` spawns ``jobs`` workers; pass ``0`` explicitly
    to rely on detached workers you started yourself.
    """
    name = "process" if name is None else name
    if name not in BACKEND_NAMES:
        raise ValueError(f"unknown backend {name!r}; expected one of {BACKEND_NAMES}")
    if name == "queue":
        if queue_dir is None:
            raise ValueError("the queue backend requires a queue directory")
        workers = jobs if queue_workers is None else queue_workers
        return QueueBackend(
            queue_dir,
            workers=workers,
            lease_seconds=lease_seconds,
            heartbeat=heartbeat,
        )
    if name == "serial" or jobs == 1:
        return SerialBackend()
    return ProcessBackend(jobs)
