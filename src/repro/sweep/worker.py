"""Detached sweep worker: claim trials from a queue, execute, repeat.

A worker is a plain process (``repro worker --queue-dir ...``) that needs
nothing but the queue directory: every claimed row carries its pickled
:class:`~repro.sweep.spec.SweepPoint`, and the trial runs through the exact
same entry point the process-pool backend uses
(:func:`repro.sweep.executor._execute_point_trial`), so a trial computes the
same bits no matter which worker on which host executes it.

While a trial runs, a daemon thread renews the row's lease at a third of
the lease period — only a *crashed* worker (SIGKILL, OOM, power loss) stops
renewing, at which point the lease expires and any other worker recovers
the trial.  A failing trial is reported with its traceback and retried up
to the queue's attempt budget before landing in the dead-letter state.
"""

from __future__ import annotations

import threading
import time
import traceback
from pathlib import Path
from typing import Callable

from .queue import (
    DEFAULT_LEASE_SECONDS,
    WorkQueue,
    worker_id,
)

__all__ = ["run_worker"]

#: How long an idle worker sleeps between claim attempts.
DEFAULT_POLL_INTERVAL = 0.5


class _LeaseRenewer:
    """Daemon thread keeping one claimed row's lease alive during execution."""

    def __init__(self, queue: WorkQueue, task_key: str, owner: str) -> None:
        self._queue = queue
        self._task_key = task_key
        self._owner = owner
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        interval = max(self._queue.lease_seconds / 3.0, 0.05)
        while not self._stop.wait(interval):
            if not self._queue.renew(self._task_key, self._owner):
                return  # lease lost (expired and re-claimed); stop renewing

    def __enter__(self) -> "_LeaseRenewer":
        self._thread.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)


def run_worker(
    queue_dir: str | Path,
    *,
    poll_interval: float = DEFAULT_POLL_INTERVAL,
    lease_seconds: float = DEFAULT_LEASE_SECONDS,
    max_tasks: int | None = None,
    exit_when_empty: bool = False,
    idle_timeout: float | None = None,
    log: Callable[[str], None] | None = None,
) -> int:
    """Pull and execute trials until stopped; returns trials executed.

    ``exit_when_empty`` exits once no row is pending *or* leased (i.e. the
    queue holds only finished work) — a leased row might still crash back
    into pending, so a merely-idle worker keeps polling until every row is
    settled.  ``idle_timeout`` exits after that many seconds without a
    successful claim.  ``max_tasks`` bounds the number of executed trials
    (useful in tests).  All three default to "run forever", the detached
    long-lived worker mode.
    """
    # Imported here (not at module top) so ``repro worker`` start-up stays
    # cheap and the queue layer never depends on the executor layer.
    from .executor import _execute_point_trial

    queue = WorkQueue(queue_dir, lease_seconds=lease_seconds)
    owner = worker_id()
    say = log if log is not None else (lambda message: None)
    executed = 0
    last_claim = time.monotonic()
    say(f"worker {owner} polling {queue.db_path}")
    while True:
        # No eager recover_expired() here: claim() already treats expired
        # leases as claimable (and dead-letters exhausted ones), so the hot
        # loop stays one write transaction per claim, not two.
        claimed = queue.claim(owner)
        if claimed is None:
            status = queue.status()
            if exit_when_empty and status.unfinished == 0:
                say(f"worker {owner} exiting: queue settled ({status.done} done)")
                break
            if (
                idle_timeout is not None
                and time.monotonic() - last_claim >= idle_timeout
            ):
                say(f"worker {owner} exiting: idle for {idle_timeout:.0f}s")
                break
            time.sleep(poll_interval)
            continue
        last_claim = time.monotonic()
        say(
            f"worker {owner} claimed {claimed.task_key[:12]}… "
            f"({claimed.point.label!r} trial {claimed.trial_index}, "
            f"attempt {claimed.attempts})"
        )
        started = time.monotonic()
        with _LeaseRenewer(queue, claimed.task_key, owner):
            try:
                metrics = _execute_point_trial(claimed.point, claimed.trial_index)
            except KeyboardInterrupt:
                # Hand the trial straight back rather than letting the lease
                # time out — and refund the attempt, so repeatedly stopping
                # and restarting workers can never dead-letter the trial.
                queue.release(claimed.task_key, owner)
                raise
            except Exception:
                queue.fail(claimed.task_key, owner, traceback.format_exc())
                say(f"worker {owner} failed {claimed.task_key[:12]}…")
                continue
        queue.complete(
            claimed.task_key, owner, metrics, seconds=time.monotonic() - started
        )
        executed += 1
        if max_tasks is not None and executed >= max_tasks:
            say(f"worker {owner} exiting: max tasks ({max_tasks}) reached")
            break
    return executed
