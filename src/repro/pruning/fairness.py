"""Fairness across task types via sufferage values (paper Section V-D2).

Probabilistic pruning tends to favour task types with short execution times.
PAMF counteracts this with a per-task-type *sufferage* value ``epsilon`` that
relaxes (lowers) the pruning thresholds of types that have been missing
deadlines.  On every task completion the sufferage of the task's type is
decreased by the *fairness factor* ``vartheta``; on every unsuccessful task
(miss or drop) it is increased by the same factor.  Sufferage values are kept
in [0, 1] (0 = no sufferage).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..simulator.mapping import TerminalEvent

__all__ = ["SufferageTracker"]


class SufferageTracker:
    """Per-task-type sufferage bookkeeping used by PAMF."""

    def __init__(self, num_task_types: int, fairness_factor: float = 0.05) -> None:
        if num_task_types < 1:
            raise ValueError("at least one task type is required")
        if not 0.0 <= fairness_factor <= 1.0:
            raise ValueError("fairness factor must lie in [0, 1]")
        self.num_task_types = int(num_task_types)
        self.fairness_factor = float(fairness_factor)
        self._sufferage = np.zeros(self.num_task_types, dtype=np.float64)

    # ------------------------------------------------------------------
    @property
    def values(self) -> np.ndarray:
        """Copy of the current sufferage values (index = task type)."""
        return self._sufferage.copy()

    def sufferage_of(self, task_type: int) -> float:
        if not 0 <= task_type < self.num_task_types:
            raise IndexError(f"task type {task_type} out of range")
        return float(self._sufferage[task_type])

    # ------------------------------------------------------------------
    def record_success(self, task_type: int) -> None:
        """A task of this type completed on time: lower its sufferage."""
        self._update(task_type, -self.fairness_factor)

    def record_failure(self, task_type: int) -> None:
        """A task of this type missed its deadline or was pruned: raise it."""
        self._update(task_type, +self.fairness_factor)

    def observe_terminal_events(self, events: Iterable[TerminalEvent]) -> None:
        """Fold in every terminal event since the previous mapping event."""
        for event in events:
            if event.on_time:
                self.record_success(event.task_type)
            else:
                self.record_failure(event.task_type)

    def _update(self, task_type: int, delta: float) -> None:
        if not 0 <= task_type < self.num_task_types:
            raise IndexError(f"task type {task_type} out of range")
        self._sufferage[task_type] = float(
            np.clip(self._sufferage[task_type] + delta, 0.0, 1.0)
        )

    # ------------------------------------------------------------------
    def relaxed_threshold(self, base_threshold: float, task_type: int) -> float:
        """Fair pruning threshold: base threshold minus the type's sufferage."""
        return float(max(0.0, base_threshold - self.sufferage_of(task_type)))

    def reset(self) -> None:
        self._sufferage[:] = 0.0

    # ------------------------------------------------------------------
    @staticmethod
    def fairness_of(per_type_completion_percent: Sequence[float]) -> float:
        """Fairness metric of Figure 6: variance of per-type completion %."""
        arr = np.asarray(per_type_completion_percent, dtype=np.float64)
        valid = arr[~np.isnan(arr)]
        if valid.size == 0:
            return 0.0
        return float(np.var(valid))
