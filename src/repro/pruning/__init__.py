"""The probabilistic pruning mechanism (deferring + dropping, Section V)."""

from .fairness import SufferageTracker
from .oversubscription import (
    ExponentialMovingAverage,
    OversubscriptionDetector,
    SchmittTrigger,
)
from .pruner import Pruner, QueuePruneReport
from .thresholds import (
    PruningThresholds,
    adjusted_dropping_threshold,
    skewness_position_adjustment,
)

__all__ = [
    "Pruner",
    "QueuePruneReport",
    "PruningThresholds",
    "adjusted_dropping_threshold",
    "skewness_position_adjustment",
    "OversubscriptionDetector",
    "ExponentialMovingAverage",
    "SchmittTrigger",
    "SufferageTracker",
]
