"""Dropping and deferring thresholds (paper Section V-B).

The pruner uses two probability thresholds:

* the **dropping threshold** — a mapped task whose success probability is at
  or below it is removed from its machine queue when dropping is engaged;
* the **deferring threshold** — an unmapped task whose best achievable
  success probability is below it is not mapped this event and waits in the
  batch queue for a better match.

The paper finds that the deferring threshold should be *higher* than the
dropping threshold (Section V-B2, Figure 5) and that the dropping threshold
should be adjusted per task using the skewness of its completion-time PMF and
its position in the machine queue (Eq. 7).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.pmf import DiscretePMF

__all__ = ["PruningThresholds", "adjusted_dropping_threshold", "skewness_position_adjustment"]


def skewness_position_adjustment(
    skewness: float, queue_position: int, *, rho: float = 0.05
) -> float:
    """Eq. 7 — the additive adjustment ``phi_i`` to the base dropping threshold.

    Parameters
    ----------
    skewness:
        Bounded skewness ``s`` of the task's completion-time PMF
        (−1 ≤ s ≤ 1, Eq. 6).  Positive skew (task likely to finish early)
        *lowers* the threshold so the task is kept; negative skew raises it.
    queue_position:
        ``kappa_i`` — 0 for the executing task / queue head; the influence of
        the adjustment decays with distance from the head because fewer tasks
        are affected by a task deep in the queue.
    rho:
        Scale parameter of the adjustment.
    """
    if queue_position < 0:
        raise ValueError("queue position must be non-negative")
    if not -1.0 - 1e-9 <= skewness <= 1.0 + 1e-9:
        raise ValueError("skewness must be the bounded value in [-1, 1]")
    if rho < 0:
        raise ValueError("rho must be non-negative")
    return (-skewness * rho) / (queue_position + 1)


def adjusted_dropping_threshold(
    base_threshold: float,
    completion_pmf: DiscretePMF,
    queue_position: int,
    *,
    rho: float = 0.05,
) -> float:
    """Dynamic per-task dropping threshold ``base + phi_i`` clipped to [0, 1]."""
    phi = skewness_position_adjustment(
        completion_pmf.bounded_skewness(), queue_position, rho=rho
    )
    return float(min(1.0, max(0.0, base_threshold + phi)))


@dataclass(frozen=True)
class PruningThresholds:
    """Base probability thresholds of the pruning mechanism.

    The paper's final configuration is a 50 % dropping threshold and a 90 %
    deferring threshold (Section VII-C); ``rho`` scales the per-task
    adjustment of Eq. 7.
    """

    dropping: float = 0.50
    deferring: float = 0.90
    rho: float = 0.05
    #: When True the dropping threshold is adjusted per task with Eq. 7.
    dynamic_per_task: bool = True

    def __post_init__(self) -> None:
        for name, value in (("dropping", self.dropping), ("deferring", self.deferring)):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} threshold must lie in [0, 1], got {value}")
        if self.rho < 0:
            raise ValueError("rho must be non-negative")
        if self.deferring < self.dropping:
            raise ValueError(
                "the deferring threshold must be at least the dropping threshold "
                "(Section V-B2: a lower deferring threshold maps tasks that would "
                "immediately be dropped)"
            )

    # ------------------------------------------------------------------
    def dropping_threshold_for(
        self,
        completion_pmf: DiscretePMF | None = None,
        queue_position: int = 0,
        *,
        sufferage: float = 0.0,
    ) -> float:
        """Effective dropping threshold for one queued task.

        ``sufferage`` is the PAMF fairness relaxation (subtracted from the
        base threshold); the Eq. 7 adjustment is applied when a completion
        PMF is supplied and per-task dynamics are enabled.
        """
        base = max(0.0, self.dropping - max(0.0, sufferage))
        if completion_pmf is None or not self.dynamic_per_task:
            return float(min(1.0, base))
        return adjusted_dropping_threshold(
            base, completion_pmf, queue_position, rho=self.rho
        )

    def dropping_threshold_for_skewness(
        self,
        skewness: float,
        queue_position: int = 0,
        *,
        sufferage: float = 0.0,
    ) -> float:
        """Effective dropping threshold from a precomputed bounded skewness.

        Bit-identical to :meth:`dropping_threshold_for` fed the PMF whose
        ``bounded_skewness()`` equals ``skewness`` — the state-backed
        pruning walk caches the skewness alongside each chain entry so it
        never has to materialise the pre-aggregation completion PMF again.
        """
        base = max(0.0, self.dropping - max(0.0, sufferage))
        if not self.dynamic_per_task:
            return float(min(1.0, base))
        phi = skewness_position_adjustment(skewness, queue_position, rho=self.rho)
        return float(min(1.0, max(0.0, base + phi)))

    def deferring_threshold_for(self, *, sufferage: float = 0.0) -> float:
        """Effective deferring threshold, relaxed by the PAMF sufferage value."""
        return float(min(1.0, max(0.0, self.deferring - max(0.0, sufferage))))

    def should_drop(self, success_probability: float, threshold: float) -> bool:
        """Drop when robustness is *at or below* the threshold (Section V-A)."""
        return success_probability <= threshold

    def should_defer(self, success_probability: float, threshold: float) -> bool:
        """Defer when the best robustness fails to *meet* the threshold."""
        return success_probability < threshold

    def with_gap(self, gap: float) -> "PruningThresholds":
        """A copy whose deferring threshold is ``dropping + gap`` (Figure 5 sweep)."""
        return PruningThresholds(
            dropping=self.dropping,
            deferring=float(min(1.0, self.dropping + gap)),
            rho=self.rho,
            dynamic_per_task=self.dynamic_per_task,
        )
