"""Dynamic engagement of task dropping (paper Section V-C).

The pruner only drops tasks while the system is *oversubscribed*.  The
oversubscription level is tracked as an exponentially weighted moving average
(Eq. 8) of the number of deadline misses observed per mapping event,

    d_tau = mu_tau * lambda + d_(tau-1) * (1 - lambda)

and converted into an on/off dropping toggle by a Schmitt trigger with a 20 %
separation between the on and off levels, which suppresses chatter caused by
short arrival spikes.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ExponentialMovingAverage", "SchmittTrigger", "OversubscriptionDetector"]


class ExponentialMovingAverage:
    """The EWMA of Eq. 8 over per-mapping-event deadline-miss counts."""

    def __init__(self, weight: float, initial: float = 0.0) -> None:
        if not 0.0 < weight <= 1.0:
            raise ValueError("lambda (weight) must lie in (0, 1]")
        self._weight = float(weight)
        self._value = float(initial)

    @property
    def weight(self) -> float:
        return self._weight

    @property
    def value(self) -> float:
        return self._value

    def update(self, observation: float) -> float:
        """Fold in the misses observed since the previous mapping event."""
        if observation < 0:
            raise ValueError("miss counts cannot be negative")
        self._value = observation * self._weight + self._value * (1.0 - self._weight)
        return self._value

    def reset(self, value: float = 0.0) -> None:
        self._value = float(value)


class SchmittTrigger:
    """Two-level hysteresis toggle (paper Section V-C).

    Dropping engages when the input reaches ``on_level`` and only disengages
    once the input falls to ``off_level`` or below; the paper separates the
    two levels by 20 %.
    """

    def __init__(self, on_level: float, *, separation: float = 0.2, initially_on: bool = False) -> None:
        if on_level <= 0:
            raise ValueError("on_level must be positive")
        if not 0.0 <= separation < 1.0:
            raise ValueError("separation must lie in [0, 1)")
        self.on_level = float(on_level)
        self.off_level = float(on_level) * (1.0 - separation)
        self._state = bool(initially_on)

    @property
    def is_on(self) -> bool:
        return self._state

    def update(self, value: float) -> bool:
        if self._state:
            if value <= self.off_level:
                self._state = False
        else:
            if value >= self.on_level:
                self._state = True
        return self._state

    def reset(self, *, on: bool = False) -> None:
        self._state = bool(on)


@dataclass
class OversubscriptionDetector:
    """EWMA + Schmitt trigger deciding whether dropping is engaged.

    Parameters
    ----------
    ewma_weight:
        The paper's lambda; 0.9 (strong weight on the latest event) gave the
        best robustness in Figure 4.
    toggle_level:
        Oversubscription level at which dropping engages.  The experimental
        setup uses "the dropping toggle is one task".
    schmitt_separation:
        Relative separation between the on and off levels (0.2 in the paper).
        Setting it to 0 degenerates to the single-threshold "default" toggle
        that Figure 4 compares against.
    """

    ewma_weight: float = 0.9
    toggle_level: float = 1.0
    schmitt_separation: float = 0.2

    def __post_init__(self) -> None:
        self._ewma = ExponentialMovingAverage(self.ewma_weight)
        self._trigger = SchmittTrigger(self.toggle_level, separation=self.schmitt_separation)

    @property
    def level(self) -> float:
        """Current oversubscription level d_tau."""
        return self._ewma.value

    @property
    def dropping_engaged(self) -> bool:
        return self._trigger.is_on

    def observe(self, misses_since_last_event: int) -> bool:
        """Update with the misses since the last mapping event; return the toggle."""
        level = self._ewma.update(misses_since_last_event)
        return self._trigger.update(level)

    def reset(self) -> None:
        self._ewma.reset()
        self._trigger.reset()
