"""The pruning mechanism: probabilistic task dropping and deferring (Section V).

At every mapping event the pruner

1. folds the deadline misses observed since the previous event into the
   oversubscription detector (Eq. 8 + Schmitt trigger) and, for the fair
   variant, folds terminal events into the sufferage tracker;
2. when dropping is engaged, walks every machine queue from the head
   (executing task first), computes each task's success probability given
   the tasks *kept* ahead of it, and drops those at or below their
   (dynamically adjusted, fairness-relaxed) dropping threshold;
3. exposes the deferring test used by the mapping phase: a batch task whose
   best achievable robustness fails the deferring threshold is kept in the
   batch queue for a later, hopefully better, mapping.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.completion import DroppingPolicy, completion_pmf
from ..core.pmf import DiscretePMF
from ..core.robustness import success_probability
from ..simulator.machine import Machine
from ..simulator.mapping import MappingContext, QueueDrop
from .fairness import SufferageTracker
from .oversubscription import OversubscriptionDetector
from .thresholds import PruningThresholds

__all__ = ["Pruner", "QueuePruneReport"]


@dataclass
class QueuePruneReport:
    """What the dropping stage decided for one machine queue."""

    machine_index: int
    drops: list[QueueDrop] = field(default_factory=list)
    #: (task_id, success_probability, threshold) for every examined task.
    examined: list[tuple[int, float, float]] = field(default_factory=list)
    #: Availability PMF of the machine after removing the dropped tasks.
    availability: DiscretePMF | None = None


class Pruner:
    """Probabilistic task pruning used by PAM and PAMF."""

    def __init__(
        self,
        thresholds: PruningThresholds | None = None,
        *,
        detector: OversubscriptionDetector | None = None,
        fairness: SufferageTracker | None = None,
        always_drop: bool = False,
    ) -> None:
        self.thresholds = thresholds or PruningThresholds()
        self.detector = detector or OversubscriptionDetector()
        self.fairness = fairness
        #: When True, dropping is engaged at every mapping event regardless of
        #: the detector (used by ablation experiments).
        self.always_drop = bool(always_drop)

    # ------------------------------------------------------------------
    # Per-mapping-event bookkeeping
    # ------------------------------------------------------------------
    def observe_mapping_event(self, context: MappingContext) -> bool:
        """Update detector/fairness state; return whether dropping is engaged."""
        if self.fairness is not None:
            self.fairness.observe_terminal_events(context.terminal_events)
        engaged = self.detector.observe(context.misses_since_last_event)
        return engaged or self.always_drop

    def reset(self) -> None:
        self.detector.reset()
        if self.fairness is not None:
            self.fairness.reset()

    # ------------------------------------------------------------------
    # Threshold helpers
    # ------------------------------------------------------------------
    def _sufferage_of(self, task_type: int) -> float:
        if self.fairness is None:
            return 0.0
        return self.fairness.sufferage_of(task_type)

    def deferring_threshold(self, task_type: int) -> float:
        """Deferring threshold for a task type (fairness-relaxed for PAMF)."""
        return self.thresholds.deferring_threshold_for(
            sufferage=self._sufferage_of(task_type)
        )

    def should_defer(self, best_robustness: float, task_type: int) -> bool:
        """True when a batch task should not be mapped at this event."""
        return self.thresholds.should_defer(
            best_robustness, self.deferring_threshold(task_type)
        )

    # ------------------------------------------------------------------
    # Dropping stage
    # ------------------------------------------------------------------
    def prune_machine_queue(
        self, machine: Machine, context: MappingContext
    ) -> QueuePruneReport:
        """Walk one machine queue head-first and select tasks to drop.

        The completion-time chain is rebuilt as the walk proceeds so that a
        drop immediately improves the success probability of the tasks behind
        the dropped one (Section IV) — exactly the cascading benefit the
        paper's model quantifies.

        When the context carries the engine's live
        :class:`~repro.simulator.state.SystemState` (and its chain settings
        match the context's), the walk consumes the state's cached chain
        prefix and per-task pruning metadata instead of re-convolving from
        the queue head: an unchanged queue is examined without any
        convolution, and only the suffix *behind the first actual drop* is
        re-convolved.  Both paths are bit-identical
        (``tests/pruning/test_state_backed_walk.py`` pins atol=0 equality).
        """
        state = context.state
        if (
            state is not None
            and context.policy is DroppingPolicy.EVICT
            and state.policy is context.policy
            and state.max_impulses == context.max_impulses
            and state.condition_executing_on_now == context.condition_executing_on_now
            and machine.index < len(state.machines)
            and state.machines[machine.index] is machine
        ):
            return self._prune_machine_queue_state(machine, context)
        return self._prune_machine_queue_rebuilding(machine, context)

    def _prune_machine_queue_state(
        self, machine: Machine, context: MappingContext
    ) -> QueuePruneReport:
        """State-backed walk: cached prefix, re-convolve past the first drop."""
        report = QueuePruneReport(machine_index=machine.index)
        tasks = machine.queued_tasks()
        if not tasks:
            report.availability = DiscretePMF.point(context.now)
            return report
        state = context.state
        metas = state.prune_prefix_meta(machine.index, context.now)
        chain = state.chain(machine.index, context.now)
        if len(metas) != len(tasks) or len(chain) != len(tasks):
            # The state's mirror disagrees with the queue (it never should);
            # fall back to the self-contained walk rather than misprune.
            return self._prune_machine_queue_rebuilding(machine, context)

        first_drop: int | None = None
        for position, task in enumerate(tasks):
            prob, skew = metas[position]
            threshold = self.thresholds.dropping_threshold_for_skewness(
                skew,
                queue_position=position,
                sufferage=self._sufferage_of(task.task_type),
            )
            report.examined.append((task.task_id, prob, threshold))
            if self.thresholds.should_drop(prob, threshold):
                report.drops.append(QueueDrop(task.task_id, machine.index))
                first_drop = position
                break
        if first_drop is None:
            report.availability = chain[-1]
            return report

        # A task was dropped: everything behind it sees an improved chain,
        # so from here the walk re-convolves exactly like the
        # self-contained path.  The availability ahead of the suffix is the
        # untouched chain prefix (or an immediately free machine when the
        # head — executing or not — was dropped).
        if first_drop == 0:
            prev = DiscretePMF.point(context.now)
        else:
            prev = chain[first_drop - 1]
        self._walk_suffix(
            report,
            machine,
            context,
            tasks,
            start_position=first_drop + 1,
            prev=prev,
        )
        return report

    def _walk_suffix(
        self,
        report: QueuePruneReport,
        machine: Machine,
        context: MappingContext,
        tasks: list,
        *,
        start_position: int,
        prev: DiscretePMF,
    ) -> None:
        """The head-first dropping walk over ``tasks[start_position:]``.

        ``prev`` is the availability PMF of the kept tasks ahead; the chain
        is advanced task by task (Eqs. 2-5 + impulse aggregation) with
        dropped tasks skipped — shared by the self-contained walk and the
        post-first-drop suffix of the state-backed walk.
        """
        for position, task in enumerate(tasks[start_position:], start=start_position):
            pet_entry = context.pet.get(task.task_type, machine.index)
            prob = success_probability(pet_entry, prev, task.deadline, context.policy)
            pct = completion_pmf(pet_entry, prev, task.deadline, context.policy)
            threshold = self.thresholds.dropping_threshold_for(
                pct,
                queue_position=position,
                sufferage=self._sufferage_of(task.task_type),
            )
            report.examined.append((task.task_id, prob, threshold))
            if self.thresholds.should_drop(prob, threshold):
                report.drops.append(QueueDrop(task.task_id, machine.index))
                continue  # the chain skips the dropped task
            prev = pct
            if context.max_impulses is not None:
                prev = prev.aggregate(context.max_impulses)
        report.availability = prev

    def _prune_machine_queue_rebuilding(
        self, machine: Machine, context: MappingContext
    ) -> QueuePruneReport:
        """Self-contained walk re-convolving the chain from the queue head."""
        report = QueuePruneReport(machine_index=machine.index)
        tasks = machine.queued_tasks()
        if not tasks:
            report.availability = DiscretePMF.point(context.now)
            return report

        # Availability ahead of the first pending task.
        if machine.executing is not None:
            executing = machine.executing
            prev = machine.executing_completion_pmf(
                context.pet,
                context.now,
                condition_on_now=context.condition_executing_on_now,
            )
            # The executing task can itself be dropped (Section V-A starts the
            # walk at the queue head).  Its success probability is the chance
            # it finishes by its deadline given it is still running.
            prob = float(min(1.0, prev.cdf(executing.deadline)))
            threshold = self.thresholds.dropping_threshold_for(
                prev,
                queue_position=0,
                sufferage=self._sufferage_of(executing.task_type),
            )
            report.examined.append((executing.task_id, prob, threshold))
            if self.thresholds.should_drop(prob, threshold):
                report.drops.append(QueueDrop(executing.task_id, machine.index))
                prev = DiscretePMF.point(context.now)
            else:
                prev = prev.collapse_tail_to(max(executing.deadline, context.now + 1))
            start_position = 1
        else:
            prev = DiscretePMF.point(context.now)
            start_position = 0

        self._walk_suffix(
            report,
            machine,
            context,
            tasks,
            start_position=start_position,
            prev=prev,
        )
        return report

    def select_queue_drops(
        self, context: MappingContext
    ) -> tuple[list[QueueDrop], dict[int, DiscretePMF]]:
        """Dropping stage over all machine queues.

        Returns the drops plus each machine's availability PMF after the
        drops, so the mapping phase can reuse the recomputed chains instead
        of redoing the convolutions.
        """
        drops: list[QueueDrop] = []
        availability: dict[int, DiscretePMF] = {}
        for machine in context.machines:
            report = self.prune_machine_queue(machine, context)
            drops.extend(report.drops)
            if report.availability is not None:
                availability[machine.index] = report.availability
        return drops, availability
