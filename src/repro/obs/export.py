"""Export surfaces of a :class:`~repro.obs.telemetry.Telemetry` registry.

Three formats, one registry:

* :func:`chrome_trace_events` / :func:`write_chrome_trace` — the span
  timeline as Chrome trace-event JSON (the ``{"traceEvents": [...]}``
  object form), loadable in ``chrome://tracing`` / Perfetto.  Spans become
  complete (``"ph": "X"``) events with microsecond timestamps relative to
  the registry's epoch; counters/gauges ride along as one metadata event so
  a trace file is self-contained.
* :func:`snapshot` / :func:`write_snapshot` — a flat JSON snapshot:
  counters, gauges, and per-name timing summaries (the same
  ``count/mean_s/p50_s/p95_s/p99_s/max_s`` schema the serve metrics use).
* :func:`prometheus_text` — Prometheus text exposition (counters as
  ``_total``, gauges verbatim, timing histograms as ``_seconds`` summaries)
  for scrape-style integration without any new dependency.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

from .telemetry import Telemetry

__all__ = [
    "chrome_trace_events",
    "write_chrome_trace",
    "snapshot",
    "write_snapshot",
    "prometheus_text",
]

#: Snapshot schema version (bump on breaking key changes).
SNAPSHOT_SCHEMA = 1


def chrome_trace_events(telemetry: Telemetry) -> list[dict]:
    """The registry's span timeline as Chrome trace-event dicts."""
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 1,
            "args": {"name": "repro"},
        }
    ]
    for name, start_ns, duration_ns, attrs in telemetry.spans:
        event: dict = {
            "name": name,
            "cat": name.split(".", 1)[0],
            "ph": "X",
            "ts": start_ns / 1e3,  # trace-event timestamps are microseconds
            "dur": duration_ns / 1e3,
            "pid": 1,
            "tid": 1,
        }
        if attrs:
            event["args"] = attrs
        events.append(event)
    return events


def write_chrome_trace(telemetry: Telemetry, path: str | Path) -> Path:
    """Write the Chrome trace JSON (object form, with a summary sidecar)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    document = {
        "traceEvents": chrome_trace_events(telemetry),
        "displayTimeUnit": "ms",
        "otherData": {
            "spans_recorded": len(telemetry.spans),
            "spans_dropped": telemetry.dropped_spans,
        },
    }
    path.write_text(json.dumps(document, separators=(",", ":")) + "\n")
    return path


def snapshot(telemetry: Telemetry) -> dict:
    """Flat JSON-able snapshot of every counter, gauge, and timing summary."""
    return {
        "schema": SNAPSHOT_SCHEMA,
        "counters": dict(sorted(telemetry.counters.items())),
        "gauges": dict(sorted(telemetry.gauges.items())),
        "timings": {
            name: telemetry.timings[name].summary()
            for name in sorted(telemetry.timings)
        },
        "spans": {
            "recorded": len(telemetry.spans),
            "dropped": telemetry.dropped_spans,
        },
    }


def write_snapshot(telemetry: Telemetry, path: str | Path) -> Path:
    """Write the flat snapshot as indented JSON (NaNs become ``null``)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    document = _json_safe(snapshot(telemetry))
    path.write_text(json.dumps(document, indent=2, allow_nan=False) + "\n")
    return path


def _json_safe(value):
    """Replace non-finite floats with ``None`` so the JSON stays strict."""
    if isinstance(value, dict):
        return {key: _json_safe(item) for key, item in value.items()}
    if isinstance(value, list):
        return [_json_safe(item) for item in value]
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


def _metric_name(name: str) -> str:
    """Sanitise a dotted metric name into a Prometheus identifier."""
    sanitised = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    if not sanitised or not (sanitised[0].isalpha() or sanitised[0] == "_"):
        sanitised = "_" + sanitised
    return f"repro_{sanitised}"


def prometheus_text(telemetry: Telemetry) -> str:
    """Prometheus text-exposition rendering of the registry."""
    lines: list[str] = []
    for name in sorted(telemetry.counters):
        metric = _metric_name(name) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {telemetry.counters[name]}")
    for name in sorted(telemetry.gauges):
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {telemetry.gauges[name]}")
    for name in sorted(telemetry.timings):
        hist = telemetry.timings[name]
        metric = _metric_name(name) + "_seconds"
        lines.append(f"# TYPE {metric} summary")
        if hist.count:
            for quantile in (50.0, 95.0, 99.0):
                value = hist.percentile(quantile)
                lines.append(
                    f'{metric}{{quantile="{quantile / 100.0:g}"}} {value}'
                )
        lines.append(f"{metric}_sum {hist.total}")
        lines.append(f"{metric}_count {hist.count}")
    return "\n".join(lines) + "\n"
