"""Process-local telemetry: counters, gauges, timing histograms, spans.

The registry is deliberately tiny and dependency-free (stdlib only — it is
imported by the hottest modules in the tree and must never create an import
cycle).  Two implementations share one duck-typed surface:

:class:`NullTelemetry`
    The process default.  Every method is a no-op and ``span()`` returns a
    shared singleton context manager, so instrumentation left inline in hot
    paths costs one attribute lookup and one call — the micro-bench gate in
    ``benchmarks/test_bench_micro.py`` pins this disabled overhead under 2%
    of the per-event loop and the ``ScoreTable`` fill.

:class:`Telemetry`
    The recording registry: monotone **counters**, last-value **gauges**,
    bounded log-bucketed **timing histograms** (one per metric name, fixed
    memory), and a bounded list of **spans** — named ``perf_counter_ns``
    intervals that export as a Chrome trace-event timeline
    (:func:`repro.obs.export.chrome_trace_events`).

Determinism contract
--------------------
Telemetry observes, it never steers: no instrumented call site reads a
value back out of the registry, the registry never touches RNG state, and
obs configuration never enters sweep cache keys (pinned by
``tests/obs/test_determinism.py``).  Enabling tracing therefore cannot
change a single decision of a seeded run.

Activation is process-local: :func:`active` returns the current registry
(the null one unless something installed a recorder), :func:`set_active`
swaps it, and :class:`use_telemetry` scopes a swap.  Engine instances read
the active registry when a run/stream begins, so instrumentation is scoped
per run, not per call.
"""

from __future__ import annotations

from time import perf_counter_ns
from typing import Iterator, Mapping

from .histogram import LogBucketHistogram

__all__ = [
    "NullTelemetry",
    "Telemetry",
    "NULL_TELEMETRY",
    "active",
    "set_active",
    "use_telemetry",
]

#: Default cap on recorded spans; past it spans are counted, not stored.
DEFAULT_MAX_SPANS = 1_000_000

#: Timing histograms span 1ns .. 10**4 s (then overflow), 16 buckets/decade.
_TIMING_LO_S = 1e-9
_TIMING_HI_S = 1e4


class _NullSpan:
    """Shared no-op context manager returned by :meth:`NullTelemetry.span`."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTelemetry:
    """The disabled registry: every operation is a no-op.

    Stateless and shared (:data:`NULL_TELEMETRY`); instrumented call sites
    check :attr:`enabled` only when they would otherwise *build* something
    (an args dict, a wrapper object) — plain ``count``/``span`` calls are
    cheap enough to leave unguarded.
    """

    __slots__ = ()

    enabled = False

    def span(self, name: str, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def add_span(self, name: str, start_ns: int, duration_ns: int, **attrs) -> None:
        return None

    def count(self, name: str, value: int = 1) -> None:
        return None

    def set_count(self, name: str, value: int) -> None:
        return None

    def gauge(self, name: str, value: float) -> None:
        return None

    def observe_ns(self, name: str, duration_ns: int) -> None:
        return None


NULL_TELEMETRY = NullTelemetry()


class _Span:
    """One live ``with``-scoped span; records itself on exit."""

    __slots__ = ("_telemetry", "name", "attrs", "start_ns")

    def __init__(self, telemetry: "Telemetry", name: str, attrs: dict | None) -> None:
        self._telemetry = telemetry
        self.name = name
        self.attrs = attrs
        self.start_ns = 0

    def __enter__(self) -> "_Span":
        self.start_ns = perf_counter_ns()
        return self

    def __exit__(self, *exc_info) -> None:
        end = perf_counter_ns()
        self._telemetry._record_span(
            self.name, self.start_ns, end - self.start_ns, self.attrs
        )


class Telemetry:
    """The recording registry (see the module docstring)."""

    __slots__ = ("counters", "gauges", "timings", "spans", "dropped_spans",
                 "max_spans", "epoch_ns")

    enabled = True

    def __init__(self, *, max_spans: int = DEFAULT_MAX_SPANS) -> None:
        if max_spans < 0:
            raise ValueError("max_spans must be non-negative")
        self.counters: dict[str, int] = {}
        self.gauges: dict[str, float] = {}
        self.timings: dict[str, LogBucketHistogram] = {}
        #: Recorded spans as ``(name, start_ns, duration_ns, attrs)`` tuples;
        #: start offsets are relative to :attr:`epoch_ns`.
        self.spans: list[tuple[str, int, int, dict | None]] = []
        self.dropped_spans = 0
        self.max_spans = int(max_spans)
        #: ``perf_counter_ns`` at construction — the timeline's time zero.
        self.epoch_ns = perf_counter_ns()

    # ------------------------------------------------------------------
    # Recording surface (mirrors NullTelemetry).
    # ------------------------------------------------------------------
    def span(self, name: str, **attrs) -> _Span:
        """A context manager timing its body as one named span."""
        return _Span(self, name, attrs or None)

    def add_span(self, name: str, start_ns: int, duration_ns: int, **attrs) -> None:
        """Record a span retrospectively from explicit ``perf_counter_ns`` stamps."""
        self._record_span(name, start_ns, duration_ns, attrs or None)

    def _record_span(
        self, name: str, start_ns: int, duration_ns: int, attrs: dict | None
    ) -> None:
        if len(self.spans) < self.max_spans:
            self.spans.append((name, start_ns - self.epoch_ns, duration_ns, attrs))
        else:
            self.dropped_spans += 1
        self.observe_ns(name, duration_ns)

    def count(self, name: str, value: int = 1) -> None:
        """Add ``value`` to a monotone counter."""
        self.counters[name] = self.counters.get(name, 0) + int(value)

    def set_count(self, name: str, value: int) -> None:
        """Set a counter to an absolute total (idempotent publishing)."""
        self.counters[name] = int(value)

    def gauge(self, name: str, value: float) -> None:
        """Record the latest value of a point-in-time measurement."""
        self.gauges[name] = float(value)

    def observe_ns(self, name: str, duration_ns: int) -> None:
        """Record one duration (nanoseconds) into a bounded timing histogram."""
        hist = self.timings.get(name)
        if hist is None:
            hist = LogBucketHistogram(lo=_TIMING_LO_S, hi=_TIMING_HI_S)
            self.timings[name] = hist
        hist.record(duration_ns * 1e-9)

    # ------------------------------------------------------------------
    def merge_counts(self, counts: Mapping[str, int]) -> None:
        """Fold a mapping of counter totals in (additive)."""
        for name, value in counts.items():
            self.count(name, int(value))


# ----------------------------------------------------------------------
# Process-local activation.
# ----------------------------------------------------------------------
_ACTIVE: Telemetry | NullTelemetry = NULL_TELEMETRY


def active() -> Telemetry | NullTelemetry:
    """The telemetry registry instrumented call sites record into."""
    return _ACTIVE


def set_active(telemetry: Telemetry | NullTelemetry | None) -> Telemetry | NullTelemetry:
    """Install (and return) the process-wide registry; ``None`` = disabled."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = telemetry if telemetry is not None else NULL_TELEMETRY
    return previous


class use_telemetry:
    """Scope an active registry, restoring the previous one on exit.

    >>> tel = Telemetry()
    >>> with use_telemetry(tel):
    ...     active() is tel
    True
    """

    __slots__ = ("_telemetry", "_previous")

    def __init__(self, telemetry: Telemetry | NullTelemetry | None) -> None:
        self._telemetry = telemetry
        self._previous: Telemetry | NullTelemetry | None = None

    def __enter__(self) -> Telemetry | NullTelemetry:
        self._previous = set_active(self._telemetry)
        return active()

    def __exit__(self, *exc_info) -> None:
        set_active(self._previous)


def iter_spans(telemetry: Telemetry) -> Iterator[tuple[str, int, int, dict | None]]:
    """Iterate recorded spans as ``(name, start_offset_ns, duration_ns, attrs)``."""
    return iter(telemetry.spans)
