"""Fixed-size log-bucketed histograms with pinned quantile semantics.

:class:`LogBucketHistogram` is the one histogram schema every telemetry
surface in the tree shares: span/kernel timings in :mod:`repro.obs.telemetry`
and the admission-latency figures of :mod:`repro.serve.metrics` all record
into it.  Memory is **bounded by construction** — a fixed array of bucket
counters plus four exact scalars (count, total, min, max) — so a histogram
that records a billion samples is exactly as large as one that recorded ten.

Quantile semantics (pinned)
---------------------------
Samples land in log-spaced buckets: ``buckets_per_decade`` buckets per
decade between ``lo`` and ``hi``, one underflow-inclusive first bucket and
one overflow bucket above ``hi``.  ``percentile(q)`` is the *nearest-rank*
quantile over the bucket counts, reported as the **upper edge of the bucket
holding that rank, clamped to the exact recorded maximum** — a deterministic
upper bound on the true quantile, tight to one bucket's relative width
(``10**(1/buckets_per_decade) - 1``, ~15.5% at the default 16 buckets per
decade).  ``mean``/``min``/``max``/``count`` are exact.

Because the buckets are fixed, two histograms with the same configuration
**merge exactly**: summing their bucket counts (and the exact scalars)
yields bit-for-bit the histogram that would have recorded both sample
streams, which is what lets sharded services merge percentile figures
without conservative worst-shard bounds.
"""

from __future__ import annotations

import math

__all__ = ["LogBucketHistogram"]


class LogBucketHistogram:
    """Bounded log-bucketed histogram over positive magnitudes.

    Parameters
    ----------
    lo:
        Lower edge of the first regular bucket; smaller samples count into
        the first bucket (it doubles as the underflow bucket).
    hi:
        Upper edge of the last regular bucket; samples at or above it land
        in the overflow bucket (whose reported upper edge is ``inf``, but
        quantiles clamp to the exact max).
    buckets_per_decade:
        Resolution: relative bucket width is ``10**(1/bpd) - 1``.
    """

    __slots__ = ("lo", "hi", "buckets_per_decade", "_counts", "_scale",
                 "count", "total", "min", "max")

    def __init__(
        self,
        *,
        lo: float = 1e-7,
        hi: float = 1e4,
        buckets_per_decade: int = 16,
    ) -> None:
        if not (0.0 < lo < hi):
            raise ValueError("need 0 < lo < hi")
        if buckets_per_decade < 1:
            raise ValueError("buckets_per_decade must be at least 1")
        self.lo = float(lo)
        self.hi = float(hi)
        self.buckets_per_decade = int(buckets_per_decade)
        decades = math.log10(self.hi / self.lo)
        n = int(math.ceil(decades * self.buckets_per_decade - 1e-9))
        #: Regular buckets plus one overflow slot at the end.
        self._counts = [0] * (n + 1)
        self._scale = self.buckets_per_decade / math.log(10.0)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    # ------------------------------------------------------------------
    def record(self, value: float) -> None:
        """Record one sample (finite, non-negative)."""
        value = float(value)
        if value < 0.0 or not math.isfinite(value):
            raise ValueError(
                f"histogram samples must be finite and non-negative, got {value!r}"
            )
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self._counts[self._index(value)] += 1

    def _index(self, value: float) -> int:
        if value < self.lo:
            return 0
        if value >= self.hi:
            return len(self._counts) - 1
        index = int(math.log(value / self.lo) * self._scale)
        # Guard the floating-point boundary cases exactly once.
        return min(max(index, 0), len(self._counts) - 2)

    def bucket_upper_edge(self, index: int) -> float:
        """Upper edge of bucket ``index`` (``inf`` for the overflow bucket)."""
        if index >= len(self._counts) - 1:
            return math.inf
        return self.lo * 10.0 ** ((index + 1) / self.buckets_per_decade)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.count

    @property
    def num_buckets(self) -> int:
        return len(self._counts)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def percentile(self, q: float) -> float:
        """Pinned nearest-rank quantile (see the module docstring)."""
        if not 0.0 <= q <= 100.0:
            raise ValueError("percentile must be within [0, 100]")
        if self.count == 0:
            return float("nan")
        rank = max(1, math.ceil(q / 100.0 * self.count))
        seen = 0
        for index, bucket_count in enumerate(self._counts):
            seen += bucket_count
            if seen >= rank:
                return min(self.bucket_upper_edge(index), self.max)
        return self.max  # pragma: no cover - counts always sum to self.count

    def summary(self) -> dict[str, float]:
        """Headline figures (keys shared with the serve metrics schema)."""
        if self.count == 0:
            nan = float("nan")
            return {"count": 0, "mean_s": nan, "p50_s": nan, "p95_s": nan,
                    "p99_s": nan, "max_s": nan}
        return {
            "count": self.count,
            "mean_s": self.mean,
            "p50_s": self.percentile(50.0),
            "p95_s": self.percentile(95.0),
            "p99_s": self.percentile(99.0),
            "max_s": self.max,
        }

    # ------------------------------------------------------------------
    # Exact JSON round-trip and merging.
    # ------------------------------------------------------------------
    def to_payload(self) -> dict[str, object]:
        """JSON-able state; bucket counts are sparse ``[index, count]`` pairs."""
        return {
            "lo": self.lo,
            "hi": self.hi,
            "buckets_per_decade": self.buckets_per_decade,
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "counts": [[i, c] for i, c in enumerate(self._counts) if c],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "LogBucketHistogram":
        hist = cls(
            lo=float(payload["lo"]),
            hi=float(payload["hi"]),
            buckets_per_decade=int(payload["buckets_per_decade"]),
        )
        hist.count = int(payload["count"])
        hist.total = float(payload["total"])
        if hist.count:
            hist.min = float(payload["min"])
            hist.max = float(payload["max"])
        for index, bucket_count in payload["counts"]:
            hist._counts[int(index)] += int(bucket_count)
        return hist

    def compatible_with(self, other: "LogBucketHistogram") -> bool:
        return (
            self.lo == other.lo
            and self.hi == other.hi
            and self.buckets_per_decade == other.buckets_per_decade
        )

    def merge(self, other: "LogBucketHistogram") -> None:
        """Fold ``other`` in exactly (same bucket configuration required)."""
        if not self.compatible_with(other):
            raise ValueError("cannot merge histograms with different bucket layouts")
        self.count += other.count
        self.total += other.total
        if other.count:
            self.min = min(self.min, other.min)
            self.max = max(self.max, other.max)
        for index, bucket_count in enumerate(other._counts):
            self._counts[index] += bucket_count
