"""repro.obs — unified observability: metrics, span tracing, profiling.

One process-local :class:`Telemetry` registry carries every telemetry
surface in the tree: counters, gauges, bounded log-bucketed timing
histograms (:class:`LogBucketHistogram`, the same schema the serve
admission-latency metrics use), and lightweight ``perf_counter_ns`` spans
that export as a Chrome trace-event timeline.

The default registry is :data:`NULL_TELEMETRY`: every hook is a no-op, the
instrumented hot paths execute the same code bit for bit, and the disabled
overhead is pinned under 2% by ``benchmarks/test_bench_micro.py``.  Enable
recording by installing a :class:`Telemetry` (``--obs-trace`` /
``--obs-snapshot`` on the CLI, or :func:`set_active` / :class:`use_telemetry`
programmatically), run anything — a simulation, a sweep, the scheduler
service — and export with :func:`write_chrome_trace` /
:func:`write_snapshot` / :func:`prometheus_text`.

Telemetry never perturbs determinism: it observes decisions, it never
feeds them, and obs configuration never enters sweep cache keys (pinned by
``tests/obs/test_determinism.py``).
"""

from .histogram import LogBucketHistogram
from .telemetry import (
    NULL_TELEMETRY,
    NullTelemetry,
    Telemetry,
    active,
    set_active,
    use_telemetry,
)
from .export import (
    chrome_trace_events,
    prometheus_text,
    snapshot,
    write_chrome_trace,
    write_snapshot,
)

__all__ = [
    "LogBucketHistogram",
    "NullTelemetry",
    "Telemetry",
    "NULL_TELEMETRY",
    "active",
    "set_active",
    "use_telemetry",
    "chrome_trace_events",
    "prometheus_text",
    "snapshot",
    "write_chrome_trace",
    "write_snapshot",
]
