"""The Probabilistic Execution Time (PET) matrix (paper Section III).

A PET matrix holds one execution-time PMF per (task type, machine type)
pair.  The resource-allocation system is assumed to have this matrix
available (built offline from historical executions); all heuristics and the
pruning mechanism read from it, and the simulator's execution oracle samples
actual runtimes from it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from ..core.batch import CDFTable
from ..core.pmf import DiscretePMF

__all__ = ["PETMatrix"]


@dataclass
class PETMatrix:
    """Task-type x machine-type matrix of execution-time PMFs.

    Parameters
    ----------
    task_types:
        Names of the task types (rows).
    machine_names:
        Names of the machine types (columns).
    pmfs:
        ``pmfs[t][m]`` is the execution-time PMF of task type ``t`` on
        machine ``m``.
    """

    task_types: tuple[str, ...]
    machine_names: tuple[str, ...]
    pmfs: tuple[tuple[DiscretePMF, ...], ...]
    _mean_cache: np.ndarray | None = field(default=None, repr=False, compare=False)
    _cdf_cache: CDFTable | None = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.task_types = tuple(self.task_types)
        self.machine_names = tuple(self.machine_names)
        pmfs = tuple(tuple(row) for row in self.pmfs)
        if len(pmfs) != len(self.task_types):
            raise ValueError(
                f"expected {len(self.task_types)} PMF rows, got {len(pmfs)}"
            )
        for name, row in zip(self.task_types, pmfs):
            if len(row) != len(self.machine_names):
                raise ValueError(
                    f"task type {name!r}: expected {len(self.machine_names)} PMFs, got {len(row)}"
                )
            for pmf in row:
                if not isinstance(pmf, DiscretePMF):
                    raise TypeError("PET entries must be DiscretePMF instances")
                if not pmf.is_normalised(tol=1e-6):
                    raise ValueError("PET entries must be proper (unit-mass) PMFs")
        self.pmfs = pmfs

    # ------------------------------------------------------------------
    @classmethod
    def from_mapping(
        cls,
        entries: Mapping[tuple[str, str], DiscretePMF],
        task_types: Sequence[str],
        machine_names: Sequence[str],
    ) -> "PETMatrix":
        """Build a matrix from a ``{(task_type, machine): pmf}`` mapping."""
        rows = []
        for t in task_types:
            row = []
            for m in machine_names:
                try:
                    row.append(entries[(t, m)])
                except KeyError as exc:
                    raise KeyError(f"missing PET entry for ({t!r}, {m!r})") from exc
            rows.append(tuple(row))
        return cls(tuple(task_types), tuple(machine_names), tuple(rows))

    # ------------------------------------------------------------------
    @property
    def num_task_types(self) -> int:
        return len(self.task_types)

    @property
    def num_machines(self) -> int:
        return len(self.machine_names)

    def task_type_index(self, task_type: str) -> int:
        try:
            return self.task_types.index(task_type)
        except ValueError as exc:
            raise KeyError(f"unknown task type {task_type!r}") from exc

    def machine_index(self, machine_name: str) -> int:
        try:
            return self.machine_names.index(machine_name)
        except ValueError as exc:
            raise KeyError(f"unknown machine {machine_name!r}") from exc

    def get(self, task_type: int | str, machine: int | str) -> DiscretePMF:
        """Execution-time PMF of ``task_type`` on ``machine`` (by index or name)."""
        t = task_type if isinstance(task_type, int) else self.task_type_index(task_type)
        m = machine if isinstance(machine, int) else self.machine_index(machine)
        if not 0 <= t < self.num_task_types:
            raise IndexError(f"task type index {t} out of range")
        if not 0 <= m < self.num_machines:
            raise IndexError(f"machine index {m} out of range")
        return self.pmfs[t][m]

    def __getitem__(self, key: tuple[int | str, int | str]) -> DiscretePMF:
        task_type, machine = key
        return self.get(task_type, machine)

    # ------------------------------------------------------------------
    def mean_execution_times(self) -> np.ndarray:
        """``(num_task_types, num_machines)`` array of PMF means (cached)."""
        if self._mean_cache is None:
            means = np.array(
                [[pmf.mean() for pmf in row] for row in self.pmfs], dtype=np.float64
            )
            self._mean_cache = means
        return self._mean_cache

    def cdf_table(self) -> CDFTable:
        """Padded execution-time CDFs of every entry, for the batched scorer.

        Returns
        -------
        CDFTable
            ``(num_task_types, num_machines, max_cdf_len)`` table built once
            and cached — :class:`~repro.heuristics.base.ScoreTable` hands it
            to :func:`repro.core.batch.batched_success_probability` at every
            mapping event.
        """
        if self._cdf_cache is None:
            self._cdf_cache = CDFTable.from_grid(self.pmfs)
        return self._cdf_cache

    def mean_execution_time(self, task_type: int | str, machine: int | str) -> float:
        t = task_type if isinstance(task_type, int) else self.task_type_index(task_type)
        m = machine if isinstance(machine, int) else self.machine_index(machine)
        return float(self.mean_execution_times()[t, m])

    def task_type_mean(self, task_type: int | str) -> float:
        """Mean execution time of a task type averaged over all machines.

        This is ``avg_i`` in the deadline formula of Section VI-B.
        """
        t = task_type if isinstance(task_type, int) else self.task_type_index(task_type)
        return float(self.mean_execution_times()[t, :].mean())

    def overall_mean(self) -> float:
        """Mean execution time over all task types and machines (``avg_all``)."""
        return float(self.mean_execution_times().mean())

    def is_inconsistently_heterogeneous(self) -> bool:
        """True when no single machine is fastest for every task type."""
        means = self.mean_execution_times()
        best_machine = means.argmin(axis=1)
        return len(set(best_machine.tolist())) > 1

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serialisable representation (impulse dictionaries)."""
        return {
            "task_types": list(self.task_types),
            "machine_names": list(self.machine_names),
            "pmfs": [
                [
                    {str(t): p for t, p in pmf.to_impulses().items()}
                    for pmf in row
                ]
                for row in self.pmfs
            ],
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "PETMatrix":
        """Inverse of :meth:`to_dict`."""
        rows = []
        for row in payload["pmfs"]:
            rows.append(
                tuple(
                    DiscretePMF.from_impulses({int(t): float(p) for t, p in cell.items()})
                    for cell in row
                )
            )
        return cls(
            tuple(payload["task_types"]),
            tuple(payload["machine_names"]),
            tuple(rows),
        )
