"""PET matrix builders (paper Sections VI-A and VII-G).

Two PET constructions are needed by the evaluation:

* :func:`build_pet_from_means` / :func:`build_spec_pet` — the SPECint-style
  synthetic PET of Section VI-A: for every (task type, machine) pair a gamma
  distribution with the tabulated mean and a shape drawn uniformly from
  [1, 20] is sampled 500 times and histogrammed into a PMF.
* :func:`build_transcoding_pet` — the video-transcoding PET of Section VII-G
  (four transcoding operations on four heterogeneous cloud VM types), rebuilt
  synthetically with the affinity structure the paper describes (GPU VMs
  strongly favour compute-bound operations, memory-optimised VMs favour
  memory-bound ones).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from scipy import stats as sp_stats

from ..core.pmf import DiscretePMF
from ..utils.rng import make_generator
from .matrix import PETMatrix
from .spec_data import SPEC_MACHINE_NAMES, SPEC_TASK_TYPE_NAMES, spec_mean_matrix

__all__ = [
    "gamma_execution_pmf",
    "build_pet_from_means",
    "build_spec_pet",
    "build_transcoding_pet",
    "TRANSCODING_TASK_TYPES",
    "TRANSCODING_MACHINE_NAMES",
    "TRANSCODING_MEAN_EXECUTION_TIMES",
]

#: Default number of samples used to histogram each PET entry (paper: 500).
DEFAULT_SAMPLES_PER_ENTRY = 500

#: Shape-parameter range for the per-entry gamma distributions (paper: [1, 20]).
DEFAULT_SHAPE_RANGE = (1.0, 20.0)


def gamma_execution_pmf(
    mean: float,
    shape: float,
    *,
    rng: np.random.Generator,
    n_samples: int = DEFAULT_SAMPLES_PER_ENTRY,
    bin_width: int = 1,
) -> DiscretePMF:
    """One PET entry: a histogram of gamma-distributed execution times.

    The gamma distribution is parameterised by its mean and shape ``k``;
    the scale is ``mean / k`` so the sampled mean matches the tabulated
    mean execution time.
    """
    if mean <= 0:
        raise ValueError("mean execution time must be positive")
    if shape <= 0:
        raise ValueError("gamma shape must be positive")
    dist = sp_stats.gamma(a=shape, scale=mean / shape)
    return DiscretePMF.from_scipy(
        dist, n_samples=n_samples, rng=rng, bin_width=bin_width, min_time=1
    )


def build_pet_from_means(
    means: np.ndarray | Sequence[Sequence[float]],
    *,
    task_types: Sequence[str],
    machine_names: Sequence[str],
    rng: np.random.Generator | int | None = None,
    shape_range: tuple[float, float] = DEFAULT_SHAPE_RANGE,
    n_samples: int = DEFAULT_SAMPLES_PER_ENTRY,
    bin_width: int = 1,
) -> PETMatrix:
    """Build a PET matrix from a table of mean execution times.

    For each (task type, machine) entry a gamma shape is drawn uniformly
    from ``shape_range``, ``n_samples`` execution times are sampled, and the
    samples are histogrammed into a :class:`DiscretePMF` — exactly the
    offline procedure of Section VI-A.
    """
    rng = make_generator(rng)
    means_arr = np.asarray(means, dtype=np.float64)
    if means_arr.shape != (len(task_types), len(machine_names)):
        raise ValueError(
            f"means shape {means_arr.shape} does not match "
            f"({len(task_types)}, {len(machine_names)})"
        )
    if np.any(means_arr <= 0):
        raise ValueError("all mean execution times must be positive")
    lo, hi = shape_range
    if not (0 < lo <= hi):
        raise ValueError("invalid gamma shape range")
    rows = []
    for t in range(len(task_types)):
        row = []
        for m in range(len(machine_names)):
            shape = float(rng.uniform(lo, hi))
            row.append(
                gamma_execution_pmf(
                    float(means_arr[t, m]),
                    shape,
                    rng=rng,
                    n_samples=n_samples,
                    bin_width=bin_width,
                )
            )
        rows.append(tuple(row))
    return PETMatrix(tuple(task_types), tuple(machine_names), tuple(rows))


def build_spec_pet(
    rng: np.random.Generator | int | None = None,
    *,
    n_samples: int = DEFAULT_SAMPLES_PER_ENTRY,
    bin_width: int = 1,
) -> PETMatrix:
    """The 12 task-type x 8 machine SPECint-style PET of Section VI-A."""
    return build_pet_from_means(
        spec_mean_matrix(),
        task_types=SPEC_TASK_TYPE_NAMES,
        machine_names=SPEC_MACHINE_NAMES,
        rng=rng,
        n_samples=n_samples,
        bin_width=bin_width,
    )


# ----------------------------------------------------------------------
# Video transcoding PET (Section VII-G)
# ----------------------------------------------------------------------

#: Four transcoding operations performed on live video segments.
TRANSCODING_TASK_TYPES: tuple[str, ...] = (
    "change-resolution",
    "change-codec",
    "change-bitrate",
    "change-framerate",
)

#: Four heterogeneous cloud VM types (paper: Amazon EC2 families).
TRANSCODING_MACHINE_NAMES: tuple[str, ...] = (
    "cpu-optimized",
    "memory-optimized",
    "general-purpose",
    "gpu",
)

#: Mean execution times (time units) of each transcoding operation on each VM
#: type.  The affinity structure follows the paper's observation: codec
#: changes (compute-bound) benefit enormously from GPU VMs, resolution
#: changes moderately, while bit-rate and frame-rate changes (I/O and memory
#: bound) favour CPU/memory-optimised VMs and gain little from GPUs.
TRANSCODING_MEAN_EXECUTION_TIMES: tuple[tuple[float, ...], ...] = (
    #  cpu-opt  mem-opt  general  gpu
    (95.0,   120.0,   135.0,  60.0),   # change-resolution
    (160.0,  185.0,   200.0,  70.0),   # change-codec
    (70.0,    62.0,    88.0,  90.0),   # change-bitrate
    (85.0,    72.0,   100.0, 105.0),   # change-framerate
)


def build_transcoding_pet(
    rng: np.random.Generator | int | None = None,
    *,
    n_samples: int = DEFAULT_SAMPLES_PER_ENTRY,
    shape_range: tuple[float, float] = (2.0, 12.0),
    bin_width: int = 1,
) -> PETMatrix:
    """The 4 x 4 video-transcoding PET used for Figure 9.

    The real trace (660 videos on four EC2 VM types) is unavailable offline;
    this synthetic equivalent keeps the inconsistent-affinity structure that
    drives the PAMF-vs-MinMin comparison.
    """
    return build_pet_from_means(
        TRANSCODING_MEAN_EXECUTION_TIMES,
        task_types=TRANSCODING_TASK_TYPES,
        machine_names=TRANSCODING_MACHINE_NAMES,
        rng=rng,
        shape_range=shape_range,
        n_samples=n_samples,
        bin_width=bin_width,
    )
