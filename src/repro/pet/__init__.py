"""Probabilistic Execution Time (PET) matrix and its builders."""

from .builders import (
    TRANSCODING_MACHINE_NAMES,
    TRANSCODING_MEAN_EXECUTION_TIMES,
    TRANSCODING_TASK_TYPES,
    build_pet_from_means,
    build_spec_pet,
    build_transcoding_pet,
    gamma_execution_pmf,
)
from .matrix import PETMatrix
from .spec_data import (
    SPEC_MACHINE_NAMES,
    SPEC_MEAN_EXECUTION_TIMES,
    SPEC_TASK_TYPE_NAMES,
    spec_mean_matrix,
)

__all__ = [
    "PETMatrix",
    "build_pet_from_means",
    "build_spec_pet",
    "build_transcoding_pet",
    "gamma_execution_pmf",
    "SPEC_MACHINE_NAMES",
    "SPEC_TASK_TYPE_NAMES",
    "SPEC_MEAN_EXECUTION_TIMES",
    "spec_mean_matrix",
    "TRANSCODING_MACHINE_NAMES",
    "TRANSCODING_TASK_TYPES",
    "TRANSCODING_MEAN_EXECUTION_TIMES",
]
