"""Synthetic SPECint-style mean execution times (paper Section VI-A substitute).

The paper seeds its PET matrix with the mean execution times of twelve
SPECint benchmarks measured on eight physical machines.  Those raw
measurements are not redistributable, so this module ships a fixed synthetic
mean-time table with the same shape and the same *structural* properties the
evaluation depends on:

* task-type means fall in the 50-200 time-unit range used for deadline
  calculation (Section VI-B),
* heterogeneity is *inconsistent*: machine rankings change across task types
  (e.g. the GPU-like machine is fastest for compute-bound types but slowest
  for memory-bound ones), which is what makes machine/task matching matter.

The table is deterministic (checked in as literals) so every experiment and
test sees the identical PET structure, mirroring how the paper keeps one PET
matrix "constant across all of our experiments".
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "SPEC_MACHINE_NAMES",
    "SPEC_TASK_TYPE_NAMES",
    "SPEC_MEAN_EXECUTION_TIMES",
    "spec_mean_matrix",
]

#: The eight machines listed in the paper's footnote (names only; timings synthetic).
SPEC_MACHINE_NAMES: tuple[str, ...] = (
    "dell-precision-380",
    "apple-imac-core-duo",
    "apple-xserve",
    "ibm-system-x3455",
    "shuttle-sn25p",
    "ibm-system-p570",
    "sunfire-3800",
    "ibm-bladecenter-hs21xm",
)

#: Twelve SPECint 2006 benchmark names used as task-type labels.
SPEC_TASK_TYPE_NAMES: tuple[str, ...] = (
    "perlbench",
    "bzip2",
    "gcc",
    "mcf",
    "gobmk",
    "hmmer",
    "sjeng",
    "libquantum",
    "h264ref",
    "omnetpp",
    "astar",
    "xalancbmk",
)

#: Mean execution time (abstract time units, ~ms) of each task type (row) on
#: each machine (column).  Rows follow SPEC_TASK_TYPE_NAMES, columns follow
#: SPEC_MACHINE_NAMES.  Values are hand-constructed to be inconsistently
#: heterogeneous: no machine dominates every task type.
SPEC_MEAN_EXECUTION_TIMES: tuple[tuple[float, ...], ...] = (
    #  dell   imac  xserve ibm-x  shutl  p570   sunf   blade
    (62.0,  95.0,  88.0,  71.0, 104.0,  54.0, 132.0,  67.0),   # perlbench
    (88.0,  72.0,  69.0,  96.0,  81.0, 118.0, 102.0,  75.0),   # bzip2
    (120.0, 142.0, 110.0,  94.0, 128.0,  86.0, 155.0, 101.0),  # gcc
    (150.0, 118.0, 126.0, 160.0, 112.0, 188.0, 135.0, 172.0),  # mcf
    (72.0,  85.0,  91.0,  66.0,  78.0,  59.0,  99.0,  83.0),   # gobmk
    (55.0,  69.0,  63.0,  74.0,  58.0,  50.0,  90.0,  61.0),   # hmmer
    (81.0,  76.0,  88.0,  69.0,  92.0,  64.0, 108.0,  71.0),   # sjeng
    (170.0, 140.0, 152.0, 182.0, 133.0, 196.0, 148.0, 178.0),  # libquantum
    (95.0, 122.0, 104.0,  84.0, 118.0,  76.0, 140.0,  92.0),   # h264ref
    (138.0, 112.0, 121.0, 146.0, 107.0, 168.0, 126.0, 152.0),  # omnetpp
    (104.0,  92.0,  99.0, 112.0,  88.0, 130.0, 118.0,  96.0),  # astar
    (128.0, 150.0, 136.0, 116.0, 144.0, 102.0, 176.0, 124.0),  # xalancbmk
)


def spec_mean_matrix() -> np.ndarray:
    """The mean execution-time table as a ``(12, 8)`` float array."""
    return np.asarray(SPEC_MEAN_EXECUTION_TIMES, dtype=np.float64)
