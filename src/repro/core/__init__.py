"""Core probabilistic machinery of the reproduction.

This subpackage implements the paper's mathematical substrate: discrete
execution/completion-time PMFs, the completion-time model under task dropping
(Section IV, Eqs. 2-5), robustness evaluation (Eq. 1), and the batched PMF
engine (:mod:`repro.core.batch`) that scores whole (task, machine) grids in
single NumPy calls — bit-identical to the scalar API.
"""

from .batch import (
    KERNEL_VERSION,
    CDFTable,
    PMFBatch,
    batched_convolve,
    batched_convolve_ragged,
    batched_expected_completion,
    batched_shift,
    batched_success_probability,
    sequential_sum,
)
from .completion import (
    DroppingPolicy,
    batched_completion_step,
    completion_pmf,
    pct_evict_drop,
    pct_no_drop,
    pct_pending_drop,
    queue_completion_pmfs,
    start_pmf_for_idle_machine,
)
from .kernels import (
    KERNEL_BACKEND_NAMES,
    ArrayApiBackend,
    KernelBackend,
    KernelBackendUnavailable,
    NumbaBackend,
    NumpyBackend,
    active_backend,
    available_backends,
    get_backend,
    kernel_cache_tag,
    parse_kernel_tag,
    resolve_backend,
    use_backend,
)
from .pmf import MASS_TOLERANCE, DiscretePMF
from .robustness import (
    queue_success_probabilities,
    robustness_of_pct,
    success_probability,
)

__all__ = [
    "DiscretePMF",
    "MASS_TOLERANCE",
    "KERNEL_VERSION",
    "PMFBatch",
    "CDFTable",
    "sequential_sum",
    "batched_shift",
    "batched_convolve",
    "batched_convolve_ragged",
    "batched_success_probability",
    "batched_expected_completion",
    "KERNEL_BACKEND_NAMES",
    "KernelBackend",
    "KernelBackendUnavailable",
    "NumpyBackend",
    "NumbaBackend",
    "ArrayApiBackend",
    "active_backend",
    "available_backends",
    "get_backend",
    "resolve_backend",
    "use_backend",
    "kernel_cache_tag",
    "parse_kernel_tag",
    "DroppingPolicy",
    "completion_pmf",
    "batched_completion_step",
    "pct_no_drop",
    "pct_pending_drop",
    "pct_evict_drop",
    "queue_completion_pmfs",
    "start_pmf_for_idle_machine",
    "robustness_of_pct",
    "success_probability",
    "queue_success_probabilities",
]
