"""Core probabilistic machinery of the reproduction.

This subpackage implements the paper's mathematical substrate: discrete
execution/completion-time PMFs, the completion-time model under task dropping
(Section IV, Eqs. 2-5), and robustness evaluation (Eq. 1).
"""

from .completion import (
    DroppingPolicy,
    completion_pmf,
    pct_evict_drop,
    pct_no_drop,
    pct_pending_drop,
    queue_completion_pmfs,
    start_pmf_for_idle_machine,
)
from .pmf import MASS_TOLERANCE, DiscretePMF
from .robustness import (
    queue_success_probabilities,
    robustness_of_pct,
    success_probability,
)

__all__ = [
    "DiscretePMF",
    "MASS_TOLERANCE",
    "DroppingPolicy",
    "completion_pmf",
    "pct_no_drop",
    "pct_pending_drop",
    "pct_evict_drop",
    "queue_completion_pmfs",
    "start_pmf_for_idle_machine",
    "robustness_of_pct",
    "success_probability",
    "queue_success_probabilities",
]
