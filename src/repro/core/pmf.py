"""Discrete probability mass functions on an integer time grid.

The paper models every execution time and completion time as a Probability
Mass Function (PMF) made of impulses at discrete time units.  This module
provides :class:`DiscretePMF`, the dense vector representation used by the
rest of the library: a NumPy probability vector anchored at an integer
``offset``.  All PMF algebra needed by the paper is implemented here:

* construction from impulses, samples, or scipy distributions,
* shifting (task start time, Section IV),
* convolution (queue completion times, Eq. 2),
* truncation and mass queries (pending/evict dropping, Eqs. 3-5),
* robustness / CDF evaluation (Eq. 1),
* moments and the bounded skewness ``s`` of Eq. 6 used by the dynamic
  dropping threshold (Eq. 7),
* impulse aggregation, the approximation the paper suggests to bound the
  convolution overhead.

PMFs are allowed to be *sub-normalised* (total mass below one) because the
pruning math routinely removes probability mass (e.g. the truncated
convolution of Eq. 3); helper predicates make the distinction explicit.

This class is deliberately a *thin scalar wrapper* over the same arithmetic
the batched engine in :mod:`repro.core.batch` uses: reductions
(:meth:`DiscretePMF.total_mass`, :meth:`DiscretePMF.mean`) accumulate
strictly left to right (``np.cumsum``) and :meth:`DiscretePMF.convolve_with`
is the exact scalar counterpart of ``batched_convolve``.  That shared
op-for-op discipline is what lets the batched kernels guarantee
bit-identical (``atol=0``) results whether PMFs are scored one at a time or
as a padded ``(n_pmfs, support)`` block — see the exact-equivalence contract
documented in :mod:`repro.core.batch`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

__all__ = ["DiscretePMF", "MASS_TOLERANCE"]

#: Tolerance used when checking that probability mass sums to one.
MASS_TOLERANCE = 1e-9


def _as_probability_array(values: Sequence[float] | np.ndarray) -> np.ndarray:
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError(f"PMF probabilities must be 1-D, got shape {arr.shape}")
    if arr.size == 0:
        raise ValueError("PMF probabilities must be non-empty")
    if np.any(~np.isfinite(arr)):
        raise ValueError("PMF probabilities must be finite")
    if np.any(arr < -MASS_TOLERANCE):
        raise ValueError("PMF probabilities must be non-negative")
    return np.clip(arr, 0.0, None)


@dataclass(frozen=True)
class DiscretePMF:
    """A discrete PMF over integer time units.

    Parameters
    ----------
    probs:
        Probability of each consecutive integer time starting at ``offset``.
        The vector may be sub-normalised (mass < 1) but never super-normalised
        beyond numerical tolerance.
    offset:
        Time unit of ``probs[0]``.

    Notes
    -----
    Instances are immutable; every operation returns a new PMF.  The
    representation is dense which keeps the convolution of Eq. 2 a single
    ``numpy.convolve`` call — the vectorised idiom recommended by the
    HPC-Python guides over per-impulse Python loops.
    """

    probs: np.ndarray
    offset: int = 0

    def __post_init__(self) -> None:
        arr = _as_probability_array(self.probs)
        total = float(arr.sum())
        if total > 1.0 + 1e-6:
            raise ValueError(f"PMF mass {total} exceeds one")
        object.__setattr__(self, "probs", arr)
        object.__setattr__(self, "offset", int(self.offset))

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def _raw(cls, probs: np.ndarray, offset: int) -> "DiscretePMF":
        """Internal constructor bypassing validation.

        Used by the PMF algebra (convolve/truncate/aggregate/...) where the
        result is valid by construction; skipping the per-instance validation
        keeps completion-time chains cheap (they build hundreds of thousands
        of intermediate PMFs per simulated trial).
        """
        obj = object.__new__(cls)
        obj.__dict__["probs"] = probs
        obj.__dict__["offset"] = int(offset)
        return obj

    @staticmethod
    def point(time: int, mass: float = 1.0) -> "DiscretePMF":
        """A degenerate PMF with all mass at ``time`` (e.g. an idle machine)."""
        return DiscretePMF(np.array([mass], dtype=np.float64), offset=int(time))

    @staticmethod
    def zero() -> "DiscretePMF":
        """A PMF carrying no probability mass at all."""
        return DiscretePMF(np.array([0.0]), offset=0)

    @staticmethod
    def from_impulses(impulses: Mapping[int, float] | Iterable[tuple[int, float]]) -> "DiscretePMF":
        """Build a PMF from ``{time: probability}`` impulses.

        This mirrors the paper's notation where a PET entry is "a set of
        impulses" (Section IV).
        """
        if isinstance(impulses, Mapping):
            items = list(impulses.items())
        else:
            items = list(impulses)
        if not items:
            raise ValueError("at least one impulse is required")
        times = np.array([int(t) for t, _ in items], dtype=np.int64)
        masses = np.array([float(p) for _, p in items], dtype=np.float64)
        if np.any(masses < 0):
            raise ValueError("impulse probabilities must be non-negative")
        lo, hi = int(times.min()), int(times.max())
        probs = np.zeros(hi - lo + 1, dtype=np.float64)
        np.add.at(probs, times - lo, masses)
        return DiscretePMF(probs, offset=lo)

    @staticmethod
    def from_samples(
        samples: Sequence[float] | np.ndarray,
        *,
        bin_width: int = 1,
        min_time: int = 1,
    ) -> "DiscretePMF":
        """Build a PMF by histogramming observed execution times.

        This is the offline PET-construction procedure of Section III/VI-A:
        sample execution times, histogram them, normalise.  Samples are
        rounded to the integer grid; ``bin_width`` > 1 coarsens the grid
        (each bin's mass is placed at the bin centre).
        """
        arr = np.asarray(samples, dtype=np.float64)
        if arr.size == 0:
            raise ValueError("cannot build a PMF from zero samples")
        if np.any(~np.isfinite(arr)):
            raise ValueError("samples must be finite")
        if bin_width < 1:
            raise ValueError("bin_width must be >= 1")
        quantised = np.maximum(np.rint(arr / bin_width).astype(np.int64) * bin_width, min_time)
        values, counts = np.unique(quantised, return_counts=True)
        probs = counts.astype(np.float64) / counts.sum()
        return DiscretePMF.from_impulses(dict(zip(values.tolist(), probs.tolist())))

    @staticmethod
    def from_scipy(dist, *, n_samples: int = 500, rng: np.random.Generator | None = None,
                   bin_width: int = 1, min_time: int = 1) -> "DiscretePMF":
        """Sample a scipy frozen distribution and histogram it into a PMF.

        The paper builds each PET entry by drawing 500 samples from a gamma
        distribution and histogramming them (Section VI-A).
        """
        rng = np.random.default_rng() if rng is None else rng
        samples = dist.rvs(size=n_samples, random_state=rng)
        return DiscretePMF.from_samples(samples, bin_width=bin_width, min_time=min_time)

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def times(self) -> np.ndarray:
        """Integer time of every bin."""
        return np.arange(self.offset, self.offset + self.probs.size, dtype=np.int64)

    @property
    def min_time(self) -> int:
        return self.offset

    @property
    def max_time(self) -> int:
        return self.offset + self.probs.size - 1

    def support(self) -> tuple[int, int]:
        """Smallest and largest time carrying non-zero mass.

        Returns ``(offset, offset)`` for an all-zero PMF.
        """
        nz = np.nonzero(self.probs)[0]
        if nz.size == 0:
            return (self.offset, self.offset)
        return (self.offset + int(nz[0]), self.offset + int(nz[-1]))

    def total_mass(self) -> float:
        """Total probability mass of the PMF.

        Returns
        -------
        float
            Sum of all bins (1.0 for a proper PMF, less for sub-normalised
            ones).  Cached on first use.

        Notes
        -----
        The sum is accumulated strictly left to right (via ``np.cumsum``)
        rather than with NumPy's pairwise ``sum`` so that the batched engine
        (:meth:`repro.core.batch.PMFBatch.total_mass`), whose rows carry zero
        padding, reproduces the value bit for bit.
        """
        cached = self.__dict__.get("_total_cache")
        if cached is None:
            cached = float(np.cumsum(self.probs)[-1])
            self.__dict__["_total_cache"] = cached
        return cached

    def is_normalised(self, tol: float = 1e-6) -> bool:
        return abs(self.total_mass() - 1.0) <= tol

    def is_zero(self, tol: float = MASS_TOLERANCE) -> bool:
        return self.total_mass() <= tol

    def probability_at(self, time: int) -> float:
        """Mass of the impulse at ``time`` (0 outside the stored range)."""
        idx = int(time) - self.offset
        if idx < 0 or idx >= self.probs.size:
            return 0.0
        return float(self.probs[idx])

    def cumulative(self) -> np.ndarray:
        """Cached cumulative sums of ``probs`` (``cumulative()[i] = P(X <= offset+i)``)."""
        cached = self.__dict__.get("_cumulative_cache")
        if cached is None:
            cached = np.cumsum(self.probs)
            self.__dict__["_cumulative_cache"] = cached
        return cached

    def cdf(self, time: int) -> float:
        """P(X <= time).  Eq. 1 evaluates this at the task deadline."""
        idx = int(time) - self.offset
        if idx < 0:
            return 0.0
        cumulative = self.cumulative()
        if idx >= self.probs.size:
            return float(cumulative[-1])
        return float(cumulative[idx])

    def sf(self, time: int) -> float:
        """P(X > time) — the complementary mass."""
        return self.total_mass() - self.cdf(time)

    def mass_before(self, time: int) -> float:
        """P(X < time) (strict)."""
        return self.cdf(int(time) - 1)

    def mass_from(self, time: int) -> float:
        """P(X >= time)."""
        return self.total_mass() - self.mass_before(time)

    # ------------------------------------------------------------------
    # Moments
    # ------------------------------------------------------------------
    def mean(self) -> float:
        """Expected value of the (renormalised) PMF.

        Returns
        -------
        float
            ``sum(t * p(t)) / total_mass``, or ``nan`` for a zero-mass PMF.
            Cached on first use.

        Notes
        -----
        Accumulated sequentially (``np.cumsum``) for bit-identity with
        :meth:`repro.core.batch.PMFBatch.means`, which computes the same
        value for a whole batch of padded rows at once.
        """
        cached = self.__dict__.get("_mean_cache")
        if cached is not None:
            return cached
        total = self.total_mass()
        if total <= MASS_TOLERANCE:
            value = float("nan")
        else:
            value = float(np.cumsum(self.times * self.probs)[-1] / total)
        self.__dict__["_mean_cache"] = value
        return value

    def variance(self) -> float:
        total = self.total_mass()
        if total <= MASS_TOLERANCE:
            return float("nan")
        mu = self.mean()
        return float(np.dot((self.times - mu) ** 2, self.probs) / total)

    def std(self) -> float:
        return float(np.sqrt(self.variance()))

    def skewness(self) -> float:
        """Standardised third central moment of the (renormalised) PMF.

        Degenerate (zero-variance) and zero-mass PMFs have skewness 0 by
        convention, matching how the paper treats a freshly mapped point
        completion time.
        """
        total = self.total_mass()
        if total <= MASS_TOLERANCE:
            return 0.0
        mu = self.mean()
        var = self.variance()
        if var <= MASS_TOLERANCE:
            return 0.0
        third = float(np.dot((self.times - mu) ** 3, self.probs) / total)
        return third / var ** 1.5

    def bounded_skewness(self) -> float:
        """The paper's bounded skewness ``s`` with -1 <= s <= 1 (Eq. 6).

        Values beyond +/-1 are "highly skewed" and clipped.
        """
        return float(np.clip(self.skewness(), -1.0, 1.0))

    def expected_value(self) -> float:
        """Alias of :meth:`mean`, matching E(C_ij) in the MMU urgency metric."""
        return self.mean()

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def normalise(self) -> "DiscretePMF":
        """Rescale mass to one.  Raises for a zero-mass PMF."""
        total = self.total_mass()
        if total <= MASS_TOLERANCE:
            raise ValueError("cannot normalise a zero-mass PMF")
        return DiscretePMF._raw(self.probs / total, self.offset)

    def shift(self, delta: int) -> "DiscretePMF":
        """Translate every impulse by ``delta`` time units.

        Used to anchor a PET entry at the task start time on an idle
        machine (Section IV: "impulses in PET(i, j) are shifted by alpha").

        Parameters
        ----------
        delta:
            Signed translation in integer time units.

        Returns
        -------
        DiscretePMF
            Same probability vector at offset ``offset + delta`` (exact —
            no probability is moved between bins).  The batched counterpart
            is :func:`repro.core.batch.batched_shift`.
        """
        return DiscretePMF._raw(self.probs, self.offset + int(delta))

    def scale_mass(self, factor: float) -> "DiscretePMF":
        """Multiply all probability mass by ``factor`` in [0, 1]."""
        if factor < 0 or factor > 1 + 1e-12:
            raise ValueError("mass scale factor must lie in [0, 1]")
        return DiscretePMF._raw(self.probs * factor, self.offset)

    def compact(self) -> "DiscretePMF":
        """Strip leading/trailing zero bins (keeps at least one bin)."""
        nz = np.nonzero(self.probs)[0]
        if nz.size == 0:
            return DiscretePMF._raw(np.array([0.0]), self.offset)
        lo, hi = int(nz[0]), int(nz[-1])
        if lo == 0 and hi == self.probs.size - 1:
            return self
        return DiscretePMF._raw(self.probs[lo : hi + 1], self.offset + lo)

    def convolve_with(self, kernel: "DiscretePMF") -> "DiscretePMF":
        """Convolve with ``kernel`` by shift-and-add over its impulses.

        Parameters
        ----------
        kernel:
            Second operand; its non-zero impulses drive the accumulation, so
            the cost is ``O(nnz(kernel) * len(self))``.

        Returns
        -------
        DiscretePMF
            The distribution of the sum of the two independent variables, at
            offset ``self.offset + kernel.offset``.

        Notes
        -----
        This is the exact scalar counterpart of
        :func:`repro.core.batch.batched_convolve`: both accumulate the
        kernel's impulses in ascending time order, one vector
        multiply-accumulate per impulse, so a batch row and a lone PMF
        produce bit-identical results.  Prefer :meth:`convolve` unless the
        caller needs that guarantee — it picks the cheaper operand order
        automatically.
        """
        if self.is_zero() or kernel.is_zero():
            return DiscretePMF._raw(np.array([0.0]), self.offset + kernel.offset)
        width = self.probs.size
        probs = np.zeros(width + kernel.probs.size - 1, dtype=np.float64)
        for index in np.flatnonzero(kernel.probs).tolist():
            probs[index : index + width] += kernel.probs[index] * self.probs
        return DiscretePMF._raw(probs, self.offset + kernel.offset)

    def convolve(self, other: "DiscretePMF") -> "DiscretePMF":
        """Distribution of the sum of two independent discrete variables.

        This is the queue composition operator of Eq. 2: the completion time
        of task *i* is the completion time of task *i-1* plus the execution
        time of task *i*.

        Parameters
        ----------
        other:
            Second operand (order does not matter mathematically).

        Returns
        -------
        DiscretePMF
            PMF of the sum, at offset ``self.offset + other.offset``.

        Notes
        -----
        Completion-time chains convolve a dense execution PMF with a sparse
        (impulse-aggregated) availability PMF, so when one operand has few
        non-zero impulses the shift-and-add of :meth:`convolve_with` is used
        instead of the dense ``numpy.convolve`` — same result, far fewer
        operations.
        """
        if self.is_zero() or other.is_zero():
            return DiscretePMF._raw(np.array([0.0]), self.offset + other.offset)
        sparse, dense = (self, other)
        if np.count_nonzero(other.probs) < np.count_nonzero(self.probs):
            sparse, dense = other, self
        nnz = np.count_nonzero(sparse.probs)
        if nnz * dense.probs.size < self.probs.size * other.probs.size:
            return dense.convolve_with(sparse)
        probs = np.convolve(self.probs, other.probs)
        return DiscretePMF._raw(probs, self.offset + other.offset)

    def truncate_before(self, time: int) -> "DiscretePMF":
        """Keep only mass strictly before ``time`` (without renormalising).

        This is the building block of the pending-drop convolution (Eq. 3):
        impulses of PCT(i-1, j) at or after the deadline of task *i* are
        excluded because task *i* would have been dropped by then.

        Parameters
        ----------
        time:
            Exclusive upper cut; mass at ``t >= time`` is discarded.

        Returns
        -------
        DiscretePMF
            Sub-normalised PMF holding only the mass strictly before
            ``time``; together with :meth:`truncate_from` it partitions the
            original mass exactly.
        """
        cut = int(time) - self.offset
        if cut <= 0:
            return DiscretePMF._raw(np.array([0.0]), self.offset)
        if cut >= self.probs.size:
            return self
        return DiscretePMF._raw(self.probs[:cut], self.offset)

    def truncate_from(self, time: int) -> "DiscretePMF":
        """Keep only mass at or after ``time`` (without renormalising).

        Parameters
        ----------
        time:
            Inclusive lower cut; mass at ``t < time`` is discarded.

        Returns
        -------
        DiscretePMF
            Sub-normalised complement of :meth:`truncate_before`.
        """
        cut = int(time) - self.offset
        if cut >= self.probs.size:
            return DiscretePMF._raw(np.array([0.0]), self.offset)
        if cut <= 0:
            return self
        return DiscretePMF._raw(self.probs[cut:], self.offset + cut)

    def collapse_tail_to(self, time: int) -> "DiscretePMF":
        """Aggregate all mass at or after ``time`` into a single impulse at ``time``.

        This is the evict-drop aggregation of Eq. 5: if the task is still in
        the system at its deadline it is dropped, so the machine becomes free
        exactly at the deadline.

        Parameters
        ----------
        time:
            Aggregation point (the task deadline in Eq. 5).

        Returns
        -------
        DiscretePMF
            PMF whose support ends at ``time``; total mass is preserved
            exactly (the tail is summed sequentially, so this commutes
            bit-for-bit with the batched reductions).
        """
        t = int(time)
        cut = t - self.offset
        total = self.total_mass()
        if total <= MASS_TOLERANCE:
            return DiscretePMF._raw(np.array([0.0]), self.offset)
        if cut <= 0:
            # All mass lies at or after ``time``: a single impulse at ``time``.
            return DiscretePMF._raw(np.array([total]), t)
        if cut >= self.probs.size:
            return self
        tail_mass = float(np.cumsum(self.probs[cut:])[-1])
        if tail_mass <= MASS_TOLERANCE:
            return DiscretePMF._raw(self.probs[: cut], self.offset)
        probs = np.zeros(cut + 1, dtype=np.float64)
        probs[:cut] = self.probs[:cut]
        probs[cut] = tail_mass
        return DiscretePMF._raw(probs, self.offset)

    def add(self, other: "DiscretePMF") -> "DiscretePMF":
        """Pointwise sum of two (sub-)PMFs over the union of their supports.

        Used to merge the truncated-convolution branch with the pass-through
        branch in Eqs. 4-5.  The result must not exceed unit mass.
        """
        lo = min(self.offset, other.offset)
        hi = max(self.max_time, other.max_time)
        probs = np.zeros(hi - lo + 1, dtype=np.float64)
        probs[self.offset - lo : self.offset - lo + self.probs.size] += self.probs
        probs[other.offset - lo : other.offset - lo + other.probs.size] += other.probs
        return DiscretePMF._raw(probs, lo)

    def aggregate(self, max_impulses: int) -> "DiscretePMF":
        """Approximate the PMF with at most ``max_impulses`` impulses.

        The paper notes the convolution overhead "can be mitigated ... by
        aggregating impulses" (Section IV).  Mass is re-binned into equal
        width groups; each group's mass is placed at its mass-weighted mean
        time (rounded), which preserves total mass and approximately the
        mean.
        """
        if max_impulses < 1:
            raise ValueError("max_impulses must be >= 1")
        compacted = self.compact()
        nz = np.nonzero(compacted.probs)[0]
        if nz.size <= max_impulses:
            return compacted
        # Vectorised equal-width re-binning: assign every bin to one of
        # ``max_impulses`` groups, place each group's mass at its
        # mass-weighted mean time (rounded to the grid).
        n = compacted.probs.size
        rel = np.arange(n)
        group = (rel * max_impulses) // n
        mass = np.bincount(group, weights=compacted.probs, minlength=max_impulses)
        weighted_rel = np.bincount(
            group, weights=compacted.probs * rel, minlength=max_impulses
        )
        keep = mass > 0.0
        centres = np.rint(weighted_rel[keep] / mass[keep]).astype(np.int64)
        lo, hi = int(centres.min()), int(centres.max())
        probs = np.zeros(hi - lo + 1, dtype=np.float64)
        np.add.at(probs, centres - lo, mass[keep])
        return DiscretePMF._raw(probs, compacted.offset + lo)

    # ------------------------------------------------------------------
    # Sampling / comparison
    # ------------------------------------------------------------------
    def sample(self, rng: np.random.Generator, size: int | None = None) -> int | np.ndarray:
        """Draw execution times from the (renormalised) PMF.

        The simulator's execution oracle uses this to decide how long a task
        actually runs on the machine it was mapped to.
        """
        total = self.total_mass()
        if total <= MASS_TOLERANCE:
            raise ValueError("cannot sample from a zero-mass PMF")
        p = self.probs / total
        drawn = rng.choice(self.times, size=size, p=p)
        if size is None:
            return int(drawn)
        return drawn.astype(np.int64)

    def allclose(self, other: "DiscretePMF", *, atol: float = 1e-9) -> bool:
        """True when both PMFs place (numerically) identical mass everywhere."""
        a, b = self.compact(), other.compact()
        if a.is_zero() and b.is_zero():
            return True
        lo = min(a.offset, b.offset)
        hi = max(a.max_time, b.max_time)
        va = np.zeros(hi - lo + 1)
        vb = np.zeros(hi - lo + 1)
        va[a.offset - lo : a.offset - lo + a.probs.size] = a.probs
        vb[b.offset - lo : b.offset - lo + b.probs.size] = b.probs
        return bool(np.allclose(va, vb, atol=atol))

    def to_impulses(self) -> dict[int, float]:
        """Return the non-zero impulses as ``{time: probability}``."""
        nz = np.nonzero(self.probs)[0]
        return {int(self.offset + i): float(self.probs[i]) for i in nz}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        lo, hi = self.support()
        return (
            f"DiscretePMF(support=[{lo}, {hi}], mass={self.total_mass():.4f}, "
            f"mean={self.mean():.2f})"
        )
