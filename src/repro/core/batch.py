"""Vectorised PMF algebra: whole *sets* of PMFs as single NumPy arrays.

:mod:`repro.core.pmf` gives every probability mass function its own
:class:`~repro.core.pmf.DiscretePMF` object, which is the right granularity
for the completion-time chains of Section IV (each step feeds the next).  A
*mapping event*, however, scores every (batch task, machine) candidate pair
at once — a hot path that used to fan out into per-pair Python calls.  This
module is the batched engine behind that path.

Representation
--------------
A :class:`PMFBatch` stores ``n`` PMFs as one padded 2-D array:

* ``probs`` has shape ``(n_pmfs, support)``: row ``i`` holds the probability
  vector of PMF ``i``,
* ``offset`` is the integer time of column ``0``, *shared by every row* —
  rows whose support starts later are left-padded with zeros, rows whose
  support ends earlier are right-padded ("aligned offsets").

All batched kernels (:func:`batched_shift`, :func:`batched_convolve`,
:func:`batched_success_probability`, :func:`batched_expected_completion`)
operate on this layout.  Execution-time CDFs are pre-gathered once per PET
matrix into a :class:`CDFTable` of shape ``(n_task_types, n_machines,
max_cdf_len)``.

Shape conventions
-----------------
``n`` (or ``n_pmfs``)
    number of PMFs in a batch — one row per machine availability in the
    scoring kernels.
``support`` (or ``W``)
    width of the shared padded time grid.
``(n_tasks, n_machines)``
    every scoring kernel returns one value per candidate pair, tasks on
    axis 0 and machines on axis 1, matching ``ScoreTable.robustness``.

Exact-equivalence contract
--------------------------
Every batched kernel is **bit-identical** (``atol=0``) to its scalar
counterpart in :class:`~repro.core.pmf.DiscretePMF` and
:mod:`repro.heuristics.scoring`, regardless of how PMFs are grouped into
batches or how much zero padding the shared grid introduces.  Two rules make
this possible:

1. every reduction uses :func:`sequential_sum` — a strict left-to-right
   accumulation (``np.cumsum``) for which appending or interleaving exact
   zeros is a bit-level no-op, unlike NumPy's default pairwise ``sum``/BLAS
   ``dot`` whose grouping depends on array length;
2. convolution is a shift-and-add over the kernel operand's non-zero
   impulses in ascending time order, mirroring
   :meth:`DiscretePMF.convolve_with` operation for operation.

``tests/core/test_batch.py`` enforces the contract with zero-tolerance
comparisons; treat any relaxation of those tests as an API break.

Examples
--------
>>> import numpy as np
>>> from repro.core.pmf import DiscretePMF
>>> from repro.core.batch import PMFBatch
>>> batch = PMFBatch.from_pmfs([
...     DiscretePMF.from_impulses({1: 0.25, 2: 0.50, 3: 0.25}),
...     DiscretePMF.from_impulses({3: 0.50, 4: 0.50}),
... ])
>>> batch.probs.shape  # two PMFs on the shared grid [1, 4]
(2, 4)
>>> batch.offset
1
>>> [round(m, 2) for m in batch.total_mass().tolist()]
[1.0, 1.0]
>>> [round(m, 2) for m in batch.means().tolist()]
[2.0, 3.5]
>>> shifted = batch.shift(10)
>>> (shifted.offset, shifted.row(0).mean() - batch.row(0).mean())
(11, 10.0)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .pmf import MASS_TOLERANCE, DiscretePMF

__all__ = [
    "KERNEL_VERSION",
    "PMFBatch",
    "CDFTable",
    "sequential_sum",
    "batched_shift",
    "batched_convolve",
    "batched_convolve_ragged",
    "batched_success_probability",
    "batched_expected_completion",
]

#: Version tag of the scoring/chain kernel semantics.  Bump this whenever a
#: change to the kernels (or to the scalar ops they mirror) could alter the
#: *values* they produce — consumers that persist derived results across
#: processes (e.g. the ``repro.sweep`` result cache) fold the tag into their
#: content addresses so stale artefacts are never looked up again.
KERNEL_VERSION = 3


def sequential_sum(values: np.ndarray, axis: int = -1) -> np.ndarray:
    """Sum ``values`` along ``axis`` with strict left-to-right accumulation.

    This is the reduction primitive behind the batched kernels'
    bit-exactness guarantee.  ``np.cumsum`` must produce every prefix sum, so
    its accumulation order is fixed (``acc[k] = acc[k-1] + values[k]``); a
    zero term therefore leaves the running sum bit-for-bit unchanged, which
    makes the result independent of any zero padding the shared batch grid
    introduces.  NumPy's default ``np.sum`` (pairwise) and BLAS ``dot`` do
    not have this property: their grouping depends on the array length.

    Parameters
    ----------
    values:
        Array of any shape; summed along ``axis``.
    axis:
        Axis to reduce (default: last).

    Returns
    -------
    np.ndarray
        ``values.sum(axis)`` computed sequentially; the reduced axis is
        removed.  An empty axis yields exact zeros.

    Examples
    --------
    >>> import numpy as np
    >>> sequential_sum(np.array([[1.0, 2.0, 3.0], [0.5, 0.0, 0.25]])).tolist()
    [6.0, 0.75]
    >>> sequential_sum(np.zeros((2, 0))).tolist()
    [0.0, 0.0]
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.shape[axis] == 0:
        shape = list(arr.shape)
        del shape[axis % arr.ndim]
        return np.zeros(shape, dtype=np.float64)
    return np.take(np.cumsum(arr, axis=axis), -1, axis=axis)


@dataclass(frozen=True)
class PMFBatch:
    """A set of discrete PMFs on one shared, padded integer time grid.

    Parameters
    ----------
    probs:
        ``(n_pmfs, support)`` float64 array; ``probs[i, k]`` is the mass PMF
        ``i`` places at time ``offset + k``.  Rows may be sub-normalised or
        all-zero (a zero-mass PMF), exactly like the scalar representation.
    offset:
        Integer time of column ``0``, shared by every row.

    Notes
    -----
    Instances are immutable views in the same spirit as
    :class:`~repro.core.pmf.DiscretePMF`; every kernel returns a new batch.
    Build one with :meth:`from_pmfs` (which computes the aligned grid) rather
    than by hand unless the rows are already aligned.
    """

    probs: np.ndarray
    offset: int = 0

    def __post_init__(self) -> None:
        arr = np.asarray(self.probs, dtype=np.float64)
        if arr.ndim != 2:
            raise ValueError(f"PMFBatch probs must be 2-D, got shape {arr.shape}")
        if arr.shape[1] == 0:
            raise ValueError("PMFBatch support must be non-empty")
        if np.any(~np.isfinite(arr)):
            raise ValueError("PMFBatch probabilities must be finite")
        object.__setattr__(self, "probs", arr)
        object.__setattr__(self, "offset", int(self.offset))

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_pmfs(cls, pmfs: Sequence[DiscretePMF]) -> "PMFBatch":
        """Stack scalar PMFs onto their common (union-support) grid.

        Parameters
        ----------
        pmfs:
            One or more :class:`DiscretePMF` instances; offsets may differ
            arbitrarily (including negative times).

        Returns
        -------
        PMFBatch
            Batch whose ``offset`` is the smallest PMF offset and whose
            ``support`` spans every input's support; each row is the input
            PMF's probability vector placed at its own offset, zero-padded
            elsewhere.

        Examples
        --------
        >>> batch = PMFBatch.from_pmfs([DiscretePMF.point(5), DiscretePMF.point(7)])
        >>> batch.offset, batch.probs.shape
        (5, (2, 3))
        >>> batch.probs.tolist()
        [[1.0, 0.0, 0.0], [0.0, 0.0, 1.0]]
        """
        pmfs = list(pmfs)
        if not pmfs:
            raise ValueError("at least one PMF is required")
        lo = min(p.offset for p in pmfs)
        hi = max(p.max_time for p in pmfs)
        probs = np.zeros((len(pmfs), hi - lo + 1), dtype=np.float64)
        for i, pmf in enumerate(pmfs):
            start = pmf.offset - lo
            probs[i, start : start + pmf.probs.size] = pmf.probs
        return cls(probs, lo)

    @classmethod
    def single(cls, pmf: DiscretePMF) -> "PMFBatch":
        """A one-row batch (the scalar wrappers use this internally)."""
        return cls.from_pmfs([pmf])

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def n_pmfs(self) -> int:
        """Number of PMFs (rows) in the batch."""
        return int(self.probs.shape[0])

    @property
    def support(self) -> int:
        """Width of the shared padded time grid (columns)."""
        return int(self.probs.shape[1])

    @property
    def times(self) -> np.ndarray:
        """``(support,)`` int64 array: the time of every column."""
        return np.arange(self.offset, self.offset + self.support, dtype=np.int64)

    def row(self, index: int) -> DiscretePMF:
        """The ``index``-th PMF as a scalar :class:`DiscretePMF` (padded grid)."""
        return DiscretePMF._raw(self.probs[index].copy(), self.offset)

    def to_pmfs(self) -> list[DiscretePMF]:
        """All rows as (compacted) scalar PMFs."""
        return [self.row(i).compact() for i in range(self.n_pmfs)]

    def total_mass(self) -> np.ndarray:
        """``(n_pmfs,)`` total probability mass per row.

        Bit-identical to calling :meth:`DiscretePMF.total_mass` on each row
        (sequential accumulation; padding zeros are no-ops).
        """
        return sequential_sum(self.probs, axis=-1)

    def means(self) -> np.ndarray:
        """``(n_pmfs,)`` expected value per row (``nan`` for zero-mass rows).

        Bit-identical to calling :meth:`DiscretePMF.mean` on each row.
        """
        weighted = sequential_sum(self.probs * self.times[None, :], axis=-1)
        total = self.total_mass()
        out = np.full(self.n_pmfs, np.nan, dtype=np.float64)
        ok = total > MASS_TOLERANCE
        out[ok] = weighted[ok] / total[ok]
        return out

    # ------------------------------------------------------------------
    # Kernels (methods delegate to the module-level functions)
    # ------------------------------------------------------------------
    def shift(self, delta) -> "PMFBatch":
        """Translate the batch in time; see :func:`batched_shift`."""
        return batched_shift(self, delta)

    def convolve(self, kernel: DiscretePMF) -> "PMFBatch":
        """Convolve every row with ``kernel``; see :func:`batched_convolve`."""
        return batched_convolve(self, kernel)


@dataclass(frozen=True)
class CDFTable:
    """Padded execution-time CDFs for a grid of PMFs (one per (type, machine)).

    The success-probability kernel needs random access to
    ``P(execution <= budget)`` for every candidate pair.  This table gathers
    the per-entry cumulative vectors (``DiscretePMF.cumulative()``) into one
    dense array so a single fancy-index retrieves all of them.

    Parameters
    ----------
    cdfs:
        ``(n_task_types, n_machines, max_cdf_len)`` float64; entry
        ``cdfs[t, m, k]`` is ``P(execution of type t on machine m <=
        offsets[t, m] + k)``.  Rows shorter than ``max_cdf_len`` are
        zero-padded; the padding is never read because lookups clip the index
        to ``lengths[t, m] - 1``.
    offsets:
        ``(n_task_types, n_machines)`` int64; time of each entry's first bin.
    lengths:
        ``(n_task_types, n_machines)`` int64; valid prefix length of each
        CDF row.
    """

    cdfs: np.ndarray
    offsets: np.ndarray
    lengths: np.ndarray

    @classmethod
    def from_grid(cls, grid: Sequence[Sequence[DiscretePMF]]) -> "CDFTable":
        """Build the table from a 2-D (task type x machine) grid of PMFs."""
        rows = [list(row) for row in grid]
        if not rows or not rows[0]:
            raise ValueError("CDF grid must be non-empty")
        n_types, n_machines = len(rows), len(rows[0])
        width = max(pmf.probs.size for row in rows for pmf in row)
        cdfs = np.zeros((n_types, n_machines, width), dtype=np.float64)
        offsets = np.zeros((n_types, n_machines), dtype=np.int64)
        lengths = np.zeros((n_types, n_machines), dtype=np.int64)
        for t, row in enumerate(rows):
            if len(row) != n_machines:
                raise ValueError("CDF grid rows must all have the same length")
            for m, pmf in enumerate(row):
                cumulative = pmf.cumulative()
                cdfs[t, m, : cumulative.size] = cumulative
                offsets[t, m] = pmf.offset
                lengths[t, m] = cumulative.size
        return cls(cdfs, offsets, lengths)

    @classmethod
    def from_pmf(cls, pmf: DiscretePMF) -> "CDFTable":
        """A ``(1, 1, len)`` table for a single execution PMF."""
        return cls.from_grid([[pmf]])

    @property
    def n_task_types(self) -> int:
        return int(self.cdfs.shape[0])

    @property
    def n_machines(self) -> int:
        return int(self.cdfs.shape[1])


def batched_shift(batch: PMFBatch, delta) -> PMFBatch:
    """Translate every PMF in a batch, by a shared or per-row amount.

    Parameters
    ----------
    batch:
        The PMFs to shift.
    delta:
        Either a single int (every row moves together — a pure ``offset``
        change, no data movement) or an ``(n_pmfs,)`` integer array giving
        each row its own translation; rows are then re-aligned onto a new
        shared grid.

    Returns
    -------
    PMFBatch
        Shifted batch.  Exact: shifting only moves values, it never rounds.

    Examples
    --------
    >>> batch = PMFBatch.from_pmfs([DiscretePMF.point(0), DiscretePMF.point(1)])
    >>> batched_shift(batch, 5).offset
    5
    >>> staggered = batched_shift(batch, np.array([5, 9]))
    >>> [p.support() for p in staggered.to_pmfs()]
    [(5, 5), (10, 10)]
    """
    if np.isscalar(delta) or getattr(delta, "ndim", 1) == 0:
        return PMFBatch(batch.probs, batch.offset + int(delta))
    deltas = np.asarray(delta, dtype=np.int64)
    if deltas.shape != (batch.n_pmfs,):
        raise ValueError(
            f"expected scalar delta or shape ({batch.n_pmfs},), got {deltas.shape}"
        )
    base = int(deltas.min())
    spread = int(deltas.max()) - base
    out = np.zeros((batch.n_pmfs, batch.support + spread), dtype=np.float64)
    columns = np.arange(batch.support, dtype=np.int64)[None, :] + (deltas - base)[:, None]
    np.put_along_axis(out, columns, batch.probs, axis=1)
    return PMFBatch(out, batch.offset + base)


def batched_convolve(batch: PMFBatch, kernel: DiscretePMF) -> PMFBatch:
    """Convolve every PMF in a batch with one shared kernel.

    This is the queue-composition operator of Eq. 2 applied to ``n`` PMFs at
    once: a shift-and-add over the kernel's non-zero impulses in ascending
    time order.  It is bit-identical to calling
    :meth:`DiscretePMF.convolve_with` on each row — same accumulation order,
    and the batch grid's zero padding only ever contributes exact-zero terms.

    Parameters
    ----------
    batch:
        ``(n_pmfs, support)`` batch of (typically dense) PMFs.
    kernel:
        The second operand, shared by every row; cheap when sparse (cost
        scales with its non-zero impulse count).

    Returns
    -------
    PMFBatch
        ``(n_pmfs, support + kernel_support - 1)`` batch at offset
        ``batch.offset + kernel.offset``.  A zero-mass kernel yields an
        all-zero batch, matching the scalar convention.

    Examples
    --------
    >>> batch = PMFBatch.from_pmfs([
    ...     DiscretePMF.from_impulses({1: 0.25, 2: 0.50, 3: 0.25}),
    ...     DiscretePMF.point(2),
    ... ])
    >>> out = batched_convolve(batch, DiscretePMF.from_impulses({10: 0.5, 11: 0.5}))
    >>> out.offset
    11
    >>> [p.mean() for p in out.to_pmfs()]
    [12.5, 12.5]
    """
    offset = batch.offset + kernel.offset
    nonzero = np.flatnonzero(kernel.probs)
    if nonzero.size == 0:
        return PMFBatch(np.zeros((batch.n_pmfs, 1), dtype=np.float64), offset)
    width = batch.support
    out = np.zeros((batch.n_pmfs, width + kernel.probs.size - 1), dtype=np.float64)
    for index in nonzero.tolist():
        out[:, index : index + width] += kernel.probs[index] * batch.probs
    return PMFBatch(out, offset)


def batched_convolve_ragged(
    batch: PMFBatch, kernels: Sequence[DiscretePMF]
) -> PMFBatch:
    """Convolve every row of a batch with its *own* kernel, in lockstep.

    This is the ragged counterpart of :func:`batched_convolve`: ``n``
    independent convolutions (different kernels, different offsets, different
    supports) advance together through one shared shift-and-add loop over
    the *union* of the kernels' non-zero impulse columns.  It is the kernel
    behind :func:`repro.core.completion.batched_completion_step`, which
    propagates several machines' completion-time chains one queue position
    at a time.

    Parameters
    ----------
    batch:
        ``(n_pmfs, support)`` batch; row ``i`` is the dense operand of
        convolution ``i``.
    kernels:
        One kernel per row.  Offsets and supports may differ arbitrarily;
        cost scales with the union of their non-zero impulse columns.

    Returns
    -------
    PMFBatch
        Batch at offset ``batch.offset + min(kernel offsets)`` whose row
        ``i`` equals ``batch.row(i).convolve_with(kernels[i])`` placed on the
        shared grid.  **Bit-identical** up to zero padding: each row only
        ever accumulates its own kernel's impulses in ascending time order
        (columns where a row's kernel carries no mass contribute exact-zero
        terms, which are bit-level no-ops), so
        ``out.row(i).compact()`` equals the scalar result's ``compact()``
        bit for bit.  A zero-mass kernel yields an all-zero row.

    Examples
    --------
    >>> batch = PMFBatch.from_pmfs([
    ...     DiscretePMF.from_impulses({1: 0.25, 2: 0.50, 3: 0.25}),
    ...     DiscretePMF.point(2),
    ... ])
    >>> out = batched_convolve_ragged(
    ...     batch,
    ...     [DiscretePMF.from_impulses({10: 0.5, 11: 0.5}), DiscretePMF.point(4)],
    ... )
    >>> out.offset
    5
    >>> [p.mean() for p in out.to_pmfs()]
    [12.5, 6.0]
    """
    kernels = list(kernels)
    if len(kernels) != batch.n_pmfs:
        raise ValueError(
            f"expected one kernel per row, got {len(kernels)} kernels "
            f"for {batch.n_pmfs} rows"
        )
    k_lo = min(k.offset for k in kernels)
    k_hi = max(k.max_time for k in kernels)
    k_width = k_hi - k_lo + 1
    coeffs = np.zeros((batch.n_pmfs, k_width), dtype=np.float64)
    for i, kernel in enumerate(kernels):
        start = kernel.offset - k_lo
        coeffs[i, start : start + kernel.probs.size] = kernel.probs
    width = batch.support
    out = np.zeros((batch.n_pmfs, width + k_width - 1), dtype=np.float64)
    for index in np.flatnonzero(coeffs.any(axis=0)).tolist():
        out[:, index : index + width] += coeffs[:, index : index + 1] * batch.probs
    return PMFBatch(out, batch.offset + k_lo)


def batched_success_probability(
    availability: PMFBatch,
    execution: CDFTable,
    type_indices: np.ndarray,
    deadlines: np.ndarray,
    machine_indices: np.ndarray | None = None,
) -> np.ndarray:
    """Deadline-success probability of every (task, machine) candidate pair.

    For task ``i`` and machine ``j`` this is Eq. 1 evaluated on the
    (availability x execution) convolution without materialising it::

        P_ij = min(1, sum_t  P(machine j free at t) * P(exec_ij <= d_i - t))

    restricted to start times strictly before the deadline — exactly what
    :func:`repro.heuristics.scoring.fast_success_probability` computes for
    one pair, but for the whole ``(n_tasks, n_machines)`` grid in one call.

    Parameters
    ----------
    availability:
        One row per *candidate machine*, in the same order as
        ``machine_indices`` — the machines' virtual-queue availability PMFs
        on their shared grid.
    execution:
        CDF table of the PET matrix (see :meth:`PETMatrix.cdf_table`).
    type_indices:
        ``(n_tasks,)`` int array; task type (row of ``execution``) per task.
    deadlines:
        ``(n_tasks,)`` int array; absolute deadline per task.
    machine_indices:
        ``(n_machines,)`` int array selecting columns of ``execution`` for
        each availability row; defaults to ``0..n-1`` (i.e. availability row
        ``j`` is machine ``j``).

    Returns
    -------
    np.ndarray
        ``(n_tasks, n_machines)`` float64 success probabilities in
        ``[0, 1]``.  Bit-identical to the scalar per-pair computation: the
        time reduction is a :func:`sequential_sum` over the availability
        grid, so co-batched machines and zero padding cannot perturb any
        pair's value.

    Examples
    --------
    >>> exec_pmf = DiscretePMF.from_impulses({1: 0.25, 2: 0.50, 3: 0.25})
    >>> grid = batched_success_probability(
    ...     PMFBatch.single(DiscretePMF.point(10)),
    ...     CDFTable.from_pmf(exec_pmf),
    ...     np.array([0, 0]),
    ...     np.array([13, 12]),
    ... )
    >>> grid.shape
    (2, 1)
    >>> [round(v, 2) for v in grid[:, 0].tolist()]
    [1.0, 0.75]
    """
    type_indices = np.asarray(type_indices, dtype=np.int64)
    deadlines = np.asarray(deadlines, dtype=np.int64)
    if machine_indices is None:
        machine_indices = np.arange(availability.n_pmfs, dtype=np.int64)
    else:
        machine_indices = np.asarray(machine_indices, dtype=np.int64)
    if machine_indices.size != availability.n_pmfs:
        raise ValueError(
            "availability must have one row per entry of machine_indices "
            f"(got {availability.n_pmfs} rows for {machine_indices.size} machines)"
        )
    n_tasks, n_machines = type_indices.size, machine_indices.size
    result = np.zeros((n_tasks, n_machines), dtype=np.float64)
    if n_tasks == 0:
        return result
    columns = np.flatnonzero(availability.probs.any(axis=0))
    if columns.size == 0:
        return result
    start_times = availability.offset + columns  # (U,)
    start_probs = availability.probs[:, columns]  # (n_machines, U)

    exec_offsets = execution.offsets[type_indices[:, None], machine_indices[None, :]]
    exec_lengths = execution.lengths[type_indices[:, None], machine_indices[None, :]]
    # (n_tasks, n_machines, U) integer "time budget left for execution".
    budgets = (
        deadlines[:, None, None]
        - start_times[None, None, :]
        - exec_offsets[:, :, None]
    )
    clipped = np.minimum(budgets, (exec_lengths - 1)[:, :, None])
    usable = (start_times[None, None, :] < deadlines[:, None, None]) & (clipped >= 0)
    gathered = execution.cdfs[
        type_indices[:, None, None],
        machine_indices[None, :, None],
        np.maximum(clipped, 0),
    ]
    contributions = np.where(usable, gathered, 0.0) * start_probs[None, :, :]
    return np.minimum(1.0, sequential_sum(contributions, axis=-1))


def batched_expected_completion(
    availability_means: np.ndarray, execution_means: np.ndarray
) -> np.ndarray:
    """Expected completion time of every (task, machine) candidate pair.

    Linearity of expectation: ``E[completion_ij] = E[availability_j] +
    E[execution_ij]`` — no convolution needed, matching
    :func:`repro.heuristics.scoring.expected_completion` pair by pair
    (same operand order, hence bit-identical).

    Parameters
    ----------
    availability_means:
        ``(n_machines,)`` expected availability time per machine (``nan``
        for a zero-mass availability; propagates into the result).
    execution_means:
        ``(n_tasks, n_machines)`` mean execution time per candidate pair
        (rows of ``PETMatrix.mean_execution_times()`` selected per task).

    Returns
    -------
    np.ndarray
        ``(n_tasks, n_machines)`` expected completion times.

    Examples
    --------
    >>> batched_expected_completion(
    ...     np.array([10.0, 20.0]),
    ...     np.array([[2.0, 3.0], [4.0, 5.0]]),
    ... ).tolist()
    [[12.0, 23.0], [14.0, 25.0]]
    """
    availability_means = np.asarray(availability_means, dtype=np.float64)
    execution_means = np.asarray(execution_means, dtype=np.float64)
    return availability_means[None, :] + execution_means
