"""Pluggable execution backends for the batched PMF kernels.

:mod:`repro.core.batch` defines the hot kernels of every trial — shift,
convolve, the ragged per-row convolve behind chain propagation, the
strict-order :func:`~repro.core.batch.sequential_sum` reduction, and the
success-probability / expected-completion scoring reductions.  This module
puts a :class:`KernelBackend` protocol in front of them so the *same* kernel
surface can run on different execution substrates:

``numpy`` (:class:`NumpyBackend`)
    The default and the semantic reference: it delegates to the
    :mod:`repro.core.batch` functions unchanged and is therefore
    **bit-identical** (``atol=0``) to the scalar path, pinned by the
    differential suite in ``tests/core/test_kernel_backends.py``.
``numba`` (:class:`NumbaBackend`)
    A jitted CPU path for the loops NumPy cannot fuse — the ragged convolve
    of chain propagation and the success-probability grid fill.  Lazily
    compiled on first use, gracefully *unavailable* (not broken) when numba
    is not installed.  The jitted loops reproduce the NumPy accumulation
    order exactly, so this path is also pinned at ``atol=0``.
``array-api`` (:class:`ArrayApiBackend`)
    The portable path: kernel bodies written against the array-API standard
    namespace, so an accelerator namespace (CuPy, torch, or
    ``array_api_strict`` for conformance testing) can drop in.  Results are
    converted back to NumPy at the boundary and are pinned within an
    explicit per-backend tolerance (``rtol``/``atol`` attributes) rather
    than bit-identity — see ``docs/architecture.md`` for the policy.

Selection order
---------------
:func:`resolve_backend` resolves, in priority order: an explicit name (from
``SimulatorConfig.kernel_backend`` / ``ExperimentConfig.kernel_backend`` /
``--kernel-backend``), the ``REPRO_KERNEL_BACKEND`` environment variable,
then the ``numpy`` default.  The simulator scopes the chosen backend around
its event loop with :class:`use_backend`; call sites read
:func:`active_backend` at kernel-dispatch time.

Cache-tag semantics
-------------------
:func:`kernel_cache_tag` folds the backend into the sweep cache's engine
tag: the ``numpy`` reference keeps the historical bare integer
:data:`~repro.core.batch.KERNEL_VERSION` (pre-existing cache entries stay
valid), every other backend gets the composite ``"<version>+<backend>"``
string — so results produced by different backends can never collide in the
cache, and ``repro cache gc`` treats other-backend entries as
stale-by-version, never as corrupt.
"""

from __future__ import annotations

import importlib
import importlib.util
import os
import time
from typing import Protocol, Sequence, runtime_checkable

import numpy as np

from .batch import (
    KERNEL_VERSION,
    CDFTable,
    PMFBatch,
    batched_convolve,
    batched_convolve_ragged,
    batched_expected_completion,
    batched_shift,
    batched_success_probability,
    sequential_sum,
)
from .pmf import DiscretePMF

__all__ = [
    "KERNEL_BACKEND_NAMES",
    "KERNEL_BACKEND_ENV",
    "ARRAY_API_NAMESPACE_ENV",
    "KernelBackendUnavailable",
    "KernelBackend",
    "NumpyBackend",
    "NumbaBackend",
    "ArrayApiBackend",
    "InstrumentedBackend",
    "available_backends",
    "backend_available",
    "get_backend",
    "resolve_backend",
    "resolved_backend_name",
    "active_backend",
    "set_active_backend",
    "use_backend",
    "kernel_cache_tag",
    "parse_kernel_tag",
]

#: Registered backend names, in selection-priority-documentation order.
KERNEL_BACKEND_NAMES: tuple[str, ...] = ("numpy", "numba", "array-api")

#: Environment variable consulted when no explicit backend is configured.
KERNEL_BACKEND_ENV = "REPRO_KERNEL_BACKEND"

#: Environment variable naming the array-API namespace module for the
#: ``array-api`` backend (e.g. ``array_api_strict``, ``cupy``, ``torch``);
#: defaults to ``array_api_strict`` when installed, else NumPy's native
#: array-API-compatible namespace.
ARRAY_API_NAMESPACE_ENV = "REPRO_ARRAY_API_NS"


class KernelBackendUnavailable(RuntimeError):
    """A requested backend's optional dependency is not installed."""


@runtime_checkable
class KernelBackend(Protocol):
    """The kernel surface every backend implements.

    Semantics (shapes, offsets, zero-mass conventions) are defined by the
    reference functions in :mod:`repro.core.batch`; a backend may only vary
    *how* the arithmetic runs, within its declared ``rtol``/``atol``
    envelope against the reference.
    """

    #: Registry name (``"numpy"`` / ``"numba"`` / ``"array-api"``).
    name: str
    #: Numerical-tolerance pins versus :class:`NumpyBackend`; the reference
    #: itself and the jitted CPU path declare ``0.0`` (bit-identity).
    rtol: float
    atol: float

    def shift(self, batch: PMFBatch, delta) -> PMFBatch:  # pragma: no cover
        ...

    def convolve(self, batch: PMFBatch, kernel: DiscretePMF) -> PMFBatch:  # pragma: no cover
        ...

    def convolve_ragged(
        self, batch: PMFBatch, kernels: Sequence[DiscretePMF]
    ) -> PMFBatch:  # pragma: no cover
        ...

    def sequential_sum(self, values: np.ndarray, axis: int = -1) -> np.ndarray:  # pragma: no cover
        ...

    def success_probability(
        self,
        availability: PMFBatch,
        execution: CDFTable,
        type_indices: np.ndarray,
        deadlines: np.ndarray,
        machine_indices: np.ndarray | None = None,
    ) -> np.ndarray:  # pragma: no cover
        ...

    def expected_completion(
        self, availability_means: np.ndarray, execution_means: np.ndarray
    ) -> np.ndarray:  # pragma: no cover
        ...


class NumpyBackend:
    """The reference backend: delegates to :mod:`repro.core.batch` verbatim."""

    name = "numpy"
    rtol = 0.0
    atol = 0.0

    def shift(self, batch: PMFBatch, delta) -> PMFBatch:
        return batched_shift(batch, delta)

    def convolve(self, batch: PMFBatch, kernel: DiscretePMF) -> PMFBatch:
        return batched_convolve(batch, kernel)

    def convolve_ragged(
        self, batch: PMFBatch, kernels: Sequence[DiscretePMF]
    ) -> PMFBatch:
        return batched_convolve_ragged(batch, kernels)

    def sequential_sum(self, values: np.ndarray, axis: int = -1) -> np.ndarray:
        return sequential_sum(values, axis=axis)

    def success_probability(
        self,
        availability: PMFBatch,
        execution: CDFTable,
        type_indices: np.ndarray,
        deadlines: np.ndarray,
        machine_indices: np.ndarray | None = None,
    ) -> np.ndarray:
        return batched_success_probability(
            availability, execution, type_indices, deadlines, machine_indices
        )

    def expected_completion(
        self, availability_means: np.ndarray, execution_means: np.ndarray
    ) -> np.ndarray:
        return batched_expected_completion(availability_means, execution_means)


def _ragged_kernel_coeffs(
    batch: PMFBatch, kernels: Sequence[DiscretePMF]
) -> tuple[np.ndarray, int]:
    """Per-row kernel coefficients on their shared grid (reference layout)."""
    kernels = list(kernels)
    if len(kernels) != batch.n_pmfs:
        raise ValueError(
            f"expected one kernel per row, got {len(kernels)} kernels "
            f"for {batch.n_pmfs} rows"
        )
    k_lo = min(k.offset for k in kernels)
    k_hi = max(k.max_time for k in kernels)
    coeffs = np.zeros((batch.n_pmfs, k_hi - k_lo + 1), dtype=np.float64)
    for i, kernel in enumerate(kernels):
        start = kernel.offset - k_lo
        coeffs[i, start : start + kernel.probs.size] = kernel.probs
    return coeffs, k_lo


def _success_probability_operands(
    availability: PMFBatch,
    type_indices: np.ndarray,
    machine_indices: np.ndarray | None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray | None]:
    """Shared validation + start-column prefilter of the scoring kernel.

    Returns ``(type_indices, machine_indices, start_times, start_probs)``
    with ``start_probs=None`` when no availability column carries mass (the
    result is then exactly zero).
    """
    type_indices = np.asarray(type_indices, dtype=np.int64)
    if machine_indices is None:
        machine_indices = np.arange(availability.n_pmfs, dtype=np.int64)
    else:
        machine_indices = np.asarray(machine_indices, dtype=np.int64)
    if machine_indices.size != availability.n_pmfs:
        raise ValueError(
            "availability must have one row per entry of machine_indices "
            f"(got {availability.n_pmfs} rows for {machine_indices.size} machines)"
        )
    columns = np.flatnonzero(availability.probs.any(axis=0))
    if columns.size == 0 or type_indices.size == 0:
        return type_indices, machine_indices, np.zeros(0, dtype=np.int64), None
    start_times = availability.offset + columns
    return type_indices, machine_indices, start_times, availability.probs[:, columns]


class NumbaBackend:
    """Jitted CPU backend for the ragged convolve and the scoring grid fill.

    Only the two loop-bound kernels are compiled; everything NumPy already
    fuses well (shift, shared-kernel convolve, the reductions) delegates to
    the reference.  The jitted loops replay the reference accumulation order
    exactly (``fastmath`` off, strict left-to-right reductions, exact-zero
    terms skipped — bit-level no-ops), so this backend pins ``atol=0``.

    Raises
    ------
    KernelBackendUnavailable
        On construction, when numba is not installed.
    """

    name = "numba"
    rtol = 0.0
    atol = 0.0

    def __init__(self) -> None:
        from . import _numba_kernels

        if not _numba_kernels.NUMBA_AVAILABLE:
            raise KernelBackendUnavailable(
                "kernel backend 'numba' requires the optional numba package; "
                "install numba or select --kernel-backend numpy"
            )
        self._jit = _numba_kernels  # pragma: no cover - requires numba

    def shift(self, batch: PMFBatch, delta) -> PMFBatch:  # pragma: no cover - requires numba
        return batched_shift(batch, delta)

    def convolve(self, batch: PMFBatch, kernel: DiscretePMF) -> PMFBatch:  # pragma: no cover - requires numba
        return batched_convolve(batch, kernel)

    def sequential_sum(self, values: np.ndarray, axis: int = -1) -> np.ndarray:  # pragma: no cover - requires numba
        return sequential_sum(values, axis=axis)

    def expected_completion(
        self, availability_means: np.ndarray, execution_means: np.ndarray
    ) -> np.ndarray:  # pragma: no cover - requires numba
        return batched_expected_completion(availability_means, execution_means)

    def convolve_ragged(
        self, batch: PMFBatch, kernels: Sequence[DiscretePMF]
    ) -> PMFBatch:  # pragma: no cover - requires numba; CI `backends` job
        coeffs, k_lo = _ragged_kernel_coeffs(batch, kernels)
        out = np.zeros(
            (batch.n_pmfs, batch.support + coeffs.shape[1] - 1), dtype=np.float64
        )
        self._jit.ragged_convolve(batch.probs, coeffs, out)
        return PMFBatch(out, batch.offset + k_lo)

    def success_probability(
        self,
        availability: PMFBatch,
        execution: CDFTable,
        type_indices: np.ndarray,
        deadlines: np.ndarray,
        machine_indices: np.ndarray | None = None,
    ) -> np.ndarray:  # pragma: no cover - requires numba; CI `backends` job
        type_indices, machine_indices, start_times, start_probs = (
            _success_probability_operands(availability, type_indices, machine_indices)
        )
        out = np.zeros((type_indices.size, machine_indices.size), dtype=np.float64)
        if start_probs is None:
            return out
        self._jit.success_probability_grid(
            start_times,
            np.ascontiguousarray(start_probs),
            execution.cdfs,
            execution.offsets,
            execution.lengths,
            type_indices,
            machine_indices,
            np.asarray(deadlines, dtype=np.int64),
            out,
        )
        return out


class ArrayApiBackend:
    """Portable backend: kernel bodies on an array-API standard namespace.

    The namespace is resolved once at construction: an explicit module
    object, the ``REPRO_ARRAY_API_NS`` environment variable (module name,
    e.g. ``cupy`` or ``torch``), ``array_api_strict`` when installed, else
    NumPy's native array-API-compatible namespace.  Inputs are staged into
    the namespace per call and results converted back to NumPy float64 at
    the boundary — the goal of this path is *portability* (drop-in
    CuPy/torch), not host-side speed; device-resident batch residency is a
    named ROADMAP follow-on.

    Tolerance policy: results are pinned within ``rtol``/``atol`` below
    against :class:`NumpyBackend` (accelerator namespaces may fuse or
    reorder arithmetic); with the NumPy namespace the bodies happen to be
    exact, but only the documented envelope is contractual.
    """

    name = "array-api"
    rtol = 1e-9
    atol = 1e-12

    def __init__(self, namespace=None) -> None:
        self.xp = namespace if namespace is not None else _resolve_array_namespace()
        self.namespace_name = getattr(self.xp, "__name__", type(self.xp).__name__)

    # -- boundary conversions ------------------------------------------
    def _to_xp(self, array: np.ndarray):
        return self.xp.asarray(array)

    def _to_numpy(self, array) -> np.ndarray:
        if isinstance(array, np.ndarray):
            return array
        try:
            return np.asarray(array, dtype=np.float64)
        except Exception:  # pragma: no cover - namespaces without __array__
            return np.asarray(np.from_dlpack(array), dtype=np.float64)

    def _cumsum_last(self, array):
        fn = getattr(self.xp, "cumulative_sum", None)
        if fn is not None:
            return fn(array, axis=-1)
        return self.xp.cumsum(array, -1)  # pragma: no cover - legacy namespaces

    # -- kernels -------------------------------------------------------
    def shift(self, batch: PMFBatch, delta) -> PMFBatch:
        if np.isscalar(delta) or getattr(delta, "ndim", 1) == 0:
            # A shared shift is a pure offset change — no array work at all.
            return PMFBatch(batch.probs, batch.offset + int(delta))
        deltas = np.asarray(delta, dtype=np.int64)
        if deltas.shape != (batch.n_pmfs,):
            raise ValueError(
                f"expected scalar delta or shape ({batch.n_pmfs},), got {deltas.shape}"
            )
        base = int(deltas.min())
        spread = int(deltas.max()) - base
        xp = self.xp
        probs = self._to_xp(batch.probs)
        out = xp.zeros((batch.n_pmfs, batch.support + spread), dtype=xp.float64)
        for i, offset in enumerate((deltas - base).tolist()):
            out[i, offset : offset + batch.support] = probs[i, :]
        return PMFBatch(self._to_numpy(out), batch.offset + base)

    def convolve(self, batch: PMFBatch, kernel: DiscretePMF) -> PMFBatch:
        offset = batch.offset + kernel.offset
        nonzero = np.flatnonzero(kernel.probs)
        if nonzero.size == 0:
            return PMFBatch(np.zeros((batch.n_pmfs, 1), dtype=np.float64), offset)
        coeffs = np.zeros((batch.n_pmfs, kernel.probs.size), dtype=np.float64)
        coeffs[:, :] = kernel.probs[None, :]
        return PMFBatch(
            self._shift_and_add(batch.probs, coeffs, nonzero), offset
        )

    def convolve_ragged(
        self, batch: PMFBatch, kernels: Sequence[DiscretePMF]
    ) -> PMFBatch:
        coeffs, k_lo = _ragged_kernel_coeffs(batch, kernels)
        nonzero = np.flatnonzero(coeffs.any(axis=0))
        return PMFBatch(
            self._shift_and_add(batch.probs, coeffs, nonzero), batch.offset + k_lo
        )

    def _shift_and_add(
        self, probs_np: np.ndarray, coeffs_np: np.ndarray, nonzero: np.ndarray
    ) -> np.ndarray:
        """Shared shift-and-add loop over the non-zero kernel columns."""
        xp = self.xp
        width = probs_np.shape[1]
        probs = self._to_xp(probs_np)
        coeffs = self._to_xp(coeffs_np)
        out = xp.zeros(
            (probs_np.shape[0], width + coeffs_np.shape[1] - 1), dtype=xp.float64
        )
        for index in nonzero.tolist():
            out[:, index : index + width] = (
                out[:, index : index + width] + coeffs[:, index : index + 1] * probs
            )
        return self._to_numpy(out)

    def sequential_sum(self, values: np.ndarray, axis: int = -1) -> np.ndarray:
        arr = np.asarray(values, dtype=np.float64)
        if arr.shape[axis] == 0:
            shape = list(arr.shape)
            del shape[axis % arr.ndim]
            return np.zeros(shape, dtype=np.float64)
        # Reduce along the last axis in-namespace; moving the target axis to
        # the end first keeps the surviving axes in their original order.
        moved = np.moveaxis(arr, axis, -1)
        summed = self._cumsum_last(self._to_xp(moved))[..., -1]
        return self._to_numpy(summed)

    def success_probability(
        self,
        availability: PMFBatch,
        execution: CDFTable,
        type_indices: np.ndarray,
        deadlines: np.ndarray,
        machine_indices: np.ndarray | None = None,
    ) -> np.ndarray:
        type_indices, machine_indices, start_times, start_probs = (
            _success_probability_operands(availability, type_indices, machine_indices)
        )
        n_tasks, n_machines = type_indices.size, machine_indices.size
        if start_probs is None:
            return np.zeros((n_tasks, n_machines), dtype=np.float64)
        xp = self.xp
        deadlines = np.asarray(deadlines, dtype=np.int64)
        # Small per-pair gathers stay on the host (NumPy): the standard has
        # no multi-axis advanced indexing, and these are (n_tasks, n_machines)
        # integer tables, not the hot (…, U) reduction below.
        exec_offsets = execution.offsets[type_indices[:, None], machine_indices[None, :]]
        exec_lengths = execution.lengths[type_indices[:, None], machine_indices[None, :]]
        flat_base = (
            type_indices[:, None] * execution.cdfs.shape[1] + machine_indices[None, :]
        ) * execution.cdfs.shape[2]

        starts = self._to_xp(start_times)
        dl = self._to_xp(deadlines)
        budgets = (
            dl[:, None, None]
            - starts[None, None, :]
            - self._to_xp(exec_offsets)[:, :, None]
        )
        clipped = xp.minimum(budgets, self._to_xp(exec_lengths - 1)[:, :, None])
        usable = (starts[None, None, :] < dl[:, None, None]) & (
            clipped >= xp.zeros((), dtype=clipped.dtype)
        )
        gather = self._to_xp(flat_base)[:, :, None] + xp.maximum(
            clipped, xp.zeros((), dtype=clipped.dtype)
        )
        # take() is restricted to 1-D indices in the standard: gather from
        # the flattened CDF table and restore the grid shape.
        flat_cdfs = xp.reshape(self._to_xp(execution.cdfs), (-1,))
        gathered = xp.reshape(
            xp.take(flat_cdfs, xp.reshape(gather, (-1,))),
            (n_tasks, n_machines, start_times.size),
        )
        contributions = xp.where(
            usable, gathered, xp.zeros((), dtype=xp.float64)
        ) * self._to_xp(start_probs)[None, :, :]
        total = self._cumsum_last(contributions)[..., -1]
        result = xp.minimum(xp.ones((), dtype=xp.float64), total)
        return self._to_numpy(result)

    def expected_completion(
        self, availability_means: np.ndarray, execution_means: np.ndarray
    ) -> np.ndarray:
        means = self._to_xp(np.asarray(availability_means, dtype=np.float64))
        execution = self._to_xp(np.asarray(execution_means, dtype=np.float64))
        return self._to_numpy(means[None, :] + execution)


def _resolve_array_namespace():
    """Resolve the array-API namespace module for :class:`ArrayApiBackend`."""
    requested = os.environ.get(ARRAY_API_NAMESPACE_ENV)
    if requested:
        try:
            return importlib.import_module(requested.replace("-", "_"))
        except ImportError as exc:
            raise KernelBackendUnavailable(
                f"array-API namespace {requested!r} (from ${ARRAY_API_NAMESPACE_ENV}) "
                "is not importable"
            ) from exc
    try:
        return importlib.import_module("array_api_strict")
    except ImportError:
        return np


_BACKEND_CLASSES: dict[str, type] = {
    "numpy": NumpyBackend,
    "numba": NumbaBackend,
    "array-api": ArrayApiBackend,
}

_BACKEND_INSTANCES: dict[str, KernelBackend] = {}


def backend_available(name: str) -> bool:
    """Whether ``name`` can be instantiated in this environment (cheap)."""
    if name not in _BACKEND_CLASSES:
        return False
    if name == "numba":
        return importlib.util.find_spec("numba") is not None
    return True  # numpy always; array-api falls back to NumPy's namespace


def available_backends() -> tuple[str, ...]:
    """Registered backend names whose dependencies are installed."""
    return tuple(name for name in KERNEL_BACKEND_NAMES if backend_available(name))


def get_backend(name: str) -> KernelBackend:
    """The shared instance of one named backend (memoised per process)."""
    if name not in _BACKEND_CLASSES:
        raise ValueError(
            f"unknown kernel backend {name!r}; expected one of {KERNEL_BACKEND_NAMES}"
        )
    instance = _BACKEND_INSTANCES.get(name)
    if instance is None:
        instance = _BACKEND_CLASSES[name]()
        _BACKEND_INSTANCES[name] = instance
    return instance


def resolved_backend_name(name: str | None = None) -> str:
    """Apply the selection order: explicit name > environment > ``numpy``."""
    if name is None:
        name = os.environ.get(KERNEL_BACKEND_ENV) or "numpy"
        source = f"${KERNEL_BACKEND_ENV}"
    else:
        source = "kernel_backend"
    if name not in _BACKEND_CLASSES:
        raise ValueError(
            f"unknown kernel backend {name!r} (from {source}); "
            f"expected one of {KERNEL_BACKEND_NAMES}"
        )
    return name


def resolve_backend(spec: "str | KernelBackend | None" = None) -> KernelBackend:
    """Resolve a backend name/instance/``None`` to a live backend instance."""
    if spec is not None and not isinstance(spec, str):
        return spec
    return get_backend(resolved_backend_name(spec))


#: The process-wide active backend; ``None`` until first resolved so that
#: the environment variable is honoured however late it is set.
_ACTIVE: KernelBackend | None = None


def active_backend() -> KernelBackend:
    """The backend kernel call sites dispatch through right now."""
    global _ACTIVE
    if _ACTIVE is None:
        _ACTIVE = resolve_backend(None)
    return _ACTIVE


def set_active_backend(spec: "str | KernelBackend | None") -> KernelBackend:
    """Set (and return) the process-wide active backend."""
    global _ACTIVE
    _ACTIVE = resolve_backend(spec)
    return _ACTIVE


class use_backend:
    """Scope the active backend, restoring the previous one on exit.

    ``use_backend(None)`` is a no-op scope (the current backend stays
    active) so callers can wrap unconditionally; the simulator does exactly
    that around its event loops.
    """

    __slots__ = ("_spec", "_previous")

    def __init__(self, spec: "str | KernelBackend | None" = None) -> None:
        self._spec = spec
        self._previous: KernelBackend | None = None

    def __enter__(self) -> KernelBackend:
        if self._spec is None:
            return active_backend()
        global _ACTIVE
        self._previous = _ACTIVE
        _ACTIVE = resolve_backend(self._spec)
        return _ACTIVE

    def __exit__(self, *exc_info) -> None:
        if self._spec is not None:
            global _ACTIVE
            _ACTIVE = self._previous


class InstrumentedBackend:
    """A delegating backend wrapper timing every kernel call into telemetry.

    Each call becomes a ``kernel.<backend>.<method>`` span (metric names
    precomputed at construction, so the per-call overhead is two
    ``perf_counter_ns`` stamps plus one ``add_span``).  The engine installs
    this wrapper around its resolved backend *only when telemetry is
    enabled* — a disabled run dispatches through the bare backend and
    executes bit-identical code (the never-perturbs contract in
    :mod:`repro.obs`).

    Wrapping never changes cache identity: :attr:`name`/``rtol``/``atol``
    mirror the inner backend, and :func:`kernel_cache_tag` only ever sees
    backend *names*.
    """

    __slots__ = ("inner", "telemetry", "name", "rtol", "atol", "_metric")

    def __init__(self, inner: KernelBackend, telemetry) -> None:
        self.inner = inner
        self.telemetry = telemetry
        self.name = inner.name
        self.rtol = inner.rtol
        self.atol = inner.atol
        prefix = f"kernel.{inner.name}."
        self._metric = {
            method: prefix + method
            for method in (
                "shift",
                "convolve",
                "convolve_ragged",
                "sequential_sum",
                "success_probability",
                "expected_completion",
            )
        }

    def shift(self, batch: PMFBatch, delta) -> PMFBatch:
        start = time.perf_counter_ns()
        result = self.inner.shift(batch, delta)
        self.telemetry.add_span(
            self._metric["shift"], start, time.perf_counter_ns() - start
        )
        return result

    def convolve(self, batch: PMFBatch, kernel: DiscretePMF) -> PMFBatch:
        start = time.perf_counter_ns()
        result = self.inner.convolve(batch, kernel)
        self.telemetry.add_span(
            self._metric["convolve"], start, time.perf_counter_ns() - start
        )
        return result

    def convolve_ragged(
        self, batch: PMFBatch, kernels: Sequence[DiscretePMF]
    ) -> PMFBatch:
        start = time.perf_counter_ns()
        result = self.inner.convolve_ragged(batch, kernels)
        self.telemetry.add_span(
            self._metric["convolve_ragged"], start, time.perf_counter_ns() - start
        )
        return result

    def sequential_sum(self, values: np.ndarray, axis: int = -1) -> np.ndarray:
        start = time.perf_counter_ns()
        result = self.inner.sequential_sum(values, axis=axis)
        self.telemetry.add_span(
            self._metric["sequential_sum"], start, time.perf_counter_ns() - start
        )
        return result

    def success_probability(
        self,
        availability: PMFBatch,
        execution: CDFTable,
        type_indices: np.ndarray,
        deadlines: np.ndarray,
        machine_indices: np.ndarray | None = None,
    ) -> np.ndarray:
        start = time.perf_counter_ns()
        result = self.inner.success_probability(
            availability, execution, type_indices, deadlines, machine_indices
        )
        self.telemetry.add_span(
            self._metric["success_probability"], start, time.perf_counter_ns() - start
        )
        return result

    def expected_completion(
        self, availability_means: np.ndarray, execution_means: np.ndarray
    ) -> np.ndarray:
        start = time.perf_counter_ns()
        result = self.inner.expected_completion(availability_means, execution_means)
        self.telemetry.add_span(
            self._metric["expected_completion"], start, time.perf_counter_ns() - start
        )
        return result


def kernel_cache_tag(
    backend: str | None = None, *, version: int | None = None
) -> int | str:
    """The engine tag folded into sweep cache keys.

    The ``numpy`` reference keeps the historical bare integer
    :data:`~repro.core.batch.KERNEL_VERSION` so every pre-existing cache
    entry stays addressable; any other backend yields the composite
    ``"<version>+<backend>"`` string, which can never collide with the
    reference (or another backend) at the same kernel version.
    """
    name = resolved_backend_name(backend)
    tag_version = KERNEL_VERSION if version is None else version
    if name == "numpy":
        return tag_version
    return f"{tag_version}+{name}"


def parse_kernel_tag(tag: str | int) -> tuple[str, str]:
    """Split an engine tag into ``(version, backend)`` parts.

    Bare (pre-composite) tags — plain integers or strings without a ``+`` —
    denote the ``numpy`` reference backend.
    """
    text = str(tag)
    version, sep, backend = text.partition("+")
    return version, (backend if sep else "numpy")
