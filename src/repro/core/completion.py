"""Completion-time PMFs in the presence of task dropping (paper Section IV).

Given the execution-time PMF of a task (a PET entry) and the completion-time
PMF (PCT) of the task immediately ahead of it in a machine queue, this module
computes the task's own completion-time PMF under the three dropping regimes
of the paper:

* :func:`pct_no_drop` — Eq. 2, plain convolution, every mapped task runs to
  completion.
* :func:`pct_pending_drop` — Eqs. 3-4, a *pending* task is dropped when its
  deadline passes before it starts; the machine then becomes free when the
  predecessor finishes.
* :func:`pct_evict_drop` — Eq. 5, *any* task (including the executing one) is
  dropped at its deadline; all residual mass collapses onto the deadline.

Throughout, the returned PMF is best read as "the time at which the machine
becomes available after dealing with this task" — which equals the task's
completion time whenever the task actually completes.  This is exactly the
quantity that must be convolved with the next task's PET (the paper re-uses
the symbol PCT for it).
"""

from __future__ import annotations

import enum
from typing import Sequence

import numpy as np

from .batch import PMFBatch
from .kernels import active_backend
from .pmf import DiscretePMF

__all__ = [
    "DroppingPolicy",
    "pct_no_drop",
    "pct_pending_drop",
    "pct_evict_drop",
    "completion_pmf",
    "chain_step",
    "batched_completion_step",
    "queue_completion_pmfs",
    "start_pmf_for_idle_machine",
]


class DroppingPolicy(enum.Enum):
    """Which tasks the system is allowed to drop (Section IV, cases A-C)."""

    #: Case A — no task is ever dropped once mapped.
    NONE = "none"
    #: Case B — only tasks that have not started executing may be dropped.
    PENDING = "pending"
    #: Case C — any task, including the executing one, may be dropped
    #: (evicted) once its deadline passes.
    EVICT = "evict"


def start_pmf_for_idle_machine(current_time: int) -> DiscretePMF:
    """Availability PMF of an idle machine: a unit impulse at ``current_time``.

    Convolving a PET entry with this point mass is the "shift by the arrival
    time" of Section IV.
    """
    return DiscretePMF.point(int(current_time))


def pct_no_drop(pet: DiscretePMF, prev_pct: DiscretePMF) -> DiscretePMF:
    """Eq. 2 — completion time when no mapped task can be dropped.

    ``PCT(i, j) = PET(i, j) * PCT(i-1, j)`` (discrete convolution).
    """
    return pet.convolve(prev_pct).compact()


def pct_pending_drop(pet: DiscretePMF, prev_pct: DiscretePMF, deadline: int) -> DiscretePMF:
    """Eqs. 3-4 — completion time when pending tasks can be dropped.

    If the predecessor finishes at or after ``deadline`` the task never
    starts (it is dropped while pending), so the machine becomes available
    exactly when the predecessor finishes.  Otherwise the task executes
    normally.  In PMF terms:

    * convolve the PET with the predecessor's PCT *truncated strictly below*
      the deadline (the helper ``f(t, k)`` of Eq. 3),
    * add back the predecessor's mass at or after the deadline unchanged
      (the ``c_pend(i-1,j)(t)`` pass-through term of Eq. 4).
    """
    started = prev_pct.truncate_before(deadline)
    dropped = prev_pct.truncate_from(deadline)
    result = pet.convolve(started) if not started.is_zero() else DiscretePMF.zero()
    if not dropped.is_zero():
        result = result.add(dropped)
    return result.compact()


def pct_evict_drop(pet: DiscretePMF, prev_pct: DiscretePMF, deadline: int) -> DiscretePMF:
    """Eq. 5 — completion time when even the executing task can be dropped.

    The task is guaranteed to leave the machine by its deadline: either it
    completes before the deadline, or it is evicted exactly at the deadline.
    Therefore all mass of the "task actually ran" branch that lands at or
    after the deadline is aggregated into a single impulse at the deadline
    (the task is killed the moment the deadline passes).  The predecessor
    mass at or after the deadline — the case where the task is dropped while
    still pending — is preserved at the predecessor's completion times, as
    the paper notes those "discarded impulses ... must be added to C_ij".
    """
    started = prev_pct.truncate_before(deadline)
    dropped_pending = prev_pct.truncate_from(deadline)
    if started.is_zero():
        ran = DiscretePMF.zero()
    else:
        ran = pet.convolve(started).collapse_tail_to(deadline)
    result = ran
    if not dropped_pending.is_zero():
        result = result.add(dropped_pending)
    return result.compact()


def completion_pmf(
    pet: DiscretePMF,
    prev_pct: DiscretePMF,
    deadline: int,
    policy: DroppingPolicy = DroppingPolicy.EVICT,
) -> DiscretePMF:
    """Dispatch to the completion-time formula matching ``policy``."""
    if policy is DroppingPolicy.NONE:
        return pct_no_drop(pet, prev_pct)
    if policy is DroppingPolicy.PENDING:
        return pct_pending_drop(pet, prev_pct, deadline)
    if policy is DroppingPolicy.EVICT:
        return pct_evict_drop(pet, prev_pct, deadline)
    raise ValueError(f"unknown dropping policy: {policy!r}")


def chain_step(
    pet: DiscretePMF,
    prev: DiscretePMF,
    deadline: int,
    policy: DroppingPolicy = DroppingPolicy.EVICT,
    max_impulses: int | None = None,
) -> DiscretePMF:
    """THE availability-chain step: one queued task's completion PMF.

    ``completion_pmf`` under ``policy`` followed by the impulse-aggregation
    cap.  Every availability-chain walk in the codebase — the incremental
    :class:`~repro.simulator.state.SystemState`, its pruning-path
    ``availability_excluding`` variants, and the per-machine
    ``Machine.queue_snapshot`` reference path — must advance through this
    single helper so the paths stay bit-identical by construction.  The
    lockstep counterpart is :func:`batched_completion_step`.
    """
    out = completion_pmf(pet, prev, int(deadline), policy)
    if max_impulses is not None:
        out = out.aggregate(max_impulses)
    return out


def batched_completion_step(
    pets: Sequence[DiscretePMF],
    prevs: Sequence[DiscretePMF],
    deadlines: Sequence[int],
    policy: DroppingPolicy = DroppingPolicy.EVICT,
    *,
    max_impulses: int | None = None,
) -> list[DiscretePMF]:
    """Advance several *independent* completion chains one step, in lockstep.

    Row ``i`` computes ``completion_pmf(pets[i], prevs[i], deadlines[i],
    policy)`` (optionally followed by ``.aggregate(max_impulses)``) — one
    queue position of machine ``i``'s chain.  The expensive part, the
    convolution, runs through the ragged batch kernel
    :func:`repro.core.batch.batched_convolve_ragged` for every row whose
    scalar path would take the sparse shift-and-add branch of
    :meth:`DiscretePMF.convolve` with the (aggregated, hence sparse)
    predecessor PMF as the kernel; the remaining rows fall back to the
    scalar functions.  The per-deadline truncations and the policy
    bookkeeping are cheap slicing and stay scalar.

    Returns
    -------
    list of DiscretePMF
        ``result[i]`` is **bit-identical** (``atol=0``) to the scalar
        per-row step: the batched branch mirrors the scalar shift-and-add
        impulse order exactly and zero padding from the shared grid only
        contributes exact-zero terms.  ``repro.simulator.state.SystemState``
        relies on this to make its incremental and rebuild-from-scratch
        paths interchangeable.
    """
    pets = list(pets)
    prevs = list(prevs)
    deadlines = [int(d) for d in deadlines]
    if not (len(pets) == len(prevs) == len(deadlines)):
        raise ValueError("pets, prevs and deadlines must have the same length")
    n = len(pets)
    results: list[DiscretePMF | None] = [None] * n

    if policy is DroppingPolicy.NONE:
        started = prevs
        dropped: list[DiscretePMF | None] = [None] * n
    else:
        started = [prev.truncate_before(d) for prev, d in zip(prevs, deadlines)]
        dropped = [prev.truncate_from(d) for prev, d in zip(prevs, deadlines)]

    # Partition rows: batch the ones whose scalar convolve would do a
    # shift-and-add with the predecessor as the kernel; everything else
    # (zero-mass operands, dense-dense ``np.convolve`` rows, sparse-PET
    # rows) goes through the scalar step wholesale so the branch choice —
    # and therefore the bit pattern — matches the scalar path exactly.
    batch_rows: list[int] = []
    for i in range(n):
        pet, start = pets[i], started[i]
        if pet.is_zero() or start.is_zero():
            continue
        nnz_start = int(np.count_nonzero(start.probs))
        nnz_pet = int(np.count_nonzero(pet.probs))
        if nnz_start >= nnz_pet:
            continue  # scalar path would treat the PET entry as the kernel
        if nnz_start * pet.probs.size >= pet.probs.size * start.probs.size:
            continue  # scalar path would use the dense ``np.convolve``
        batch_rows.append(i)

    if batch_rows:
        dense = PMFBatch.from_pmfs([pets[i] for i in batch_rows])
        convolved = active_backend().convolve_ragged(
            dense, [started[i] for i in batch_rows]
        )
        for row, i in enumerate(batch_rows):
            ran = DiscretePMF._raw(convolved.probs[row].copy(), convolved.offset)
            if policy is DroppingPolicy.EVICT:
                ran = ran.collapse_tail_to(deadlines[i])
            drop = dropped[i]
            if drop is not None and not drop.is_zero():
                ran = ran.add(drop)
            results[i] = ran.compact()

    out: list[DiscretePMF] = []
    for i in range(n):
        result = results[i]
        if result is None:
            result = completion_pmf(pets[i], prevs[i], deadlines[i], policy)
        if max_impulses is not None:
            result = result.aggregate(max_impulses)
        out.append(result)
    return out


def queue_completion_pmfs(
    pets: Sequence[DiscretePMF],
    deadlines: Sequence[int],
    *,
    start: DiscretePMF,
    policy: DroppingPolicy = DroppingPolicy.EVICT,
    max_impulses: int | None = None,
) -> list[DiscretePMF]:
    """Propagate completion-time PMFs down an entire machine queue.

    Parameters
    ----------
    pets:
        Execution-time PMF of each queued task, head of the queue first.
    deadlines:
        Deadline of each queued task (same order).
    start:
        Availability PMF of the machine before the head task (a point mass at
        the current time for an idle machine, or the remaining-work PMF of the
        executing task).
    policy:
        Dropping regime used for the chain.
    max_impulses:
        Optional impulse-aggregation cap applied after every step, the
        approximation the paper suggests to bound convolution cost.

    Returns
    -------
    list of DiscretePMF
        ``result[k]`` is the availability PMF of the machine after the k-th
        queued task (equivalently that task's PCT when it completes).
    """
    if len(pets) != len(deadlines):
        raise ValueError("pets and deadlines must have the same length")
    out: list[DiscretePMF] = []
    prev = start
    for pet, deadline in zip(pets, deadlines):
        prev = completion_pmf(pet, prev, int(deadline), policy)
        if max_impulses is not None:
            prev = prev.aggregate(max_impulses)
        out.append(prev)
    return out
