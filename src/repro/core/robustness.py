"""Task robustness — the probability of meeting a deadline (paper Eq. 1).

Robustness of a task/machine pair is the probability that the task completes
at or before its deadline, evaluated on its completion-time PMF.  For the
evict-capable dropping regime the aggregated impulse at the deadline produced
by Eq. 5 represents *eviction*, not success, so the success probability must
be computed from the pre-aggregation chain; :func:`success_probability` takes
care of that distinction so callers never have to.
"""

from __future__ import annotations

from typing import Sequence

from .completion import DroppingPolicy
from .pmf import DiscretePMF

__all__ = [
    "robustness_of_pct",
    "success_probability",
    "queue_success_probabilities",
]


def robustness_of_pct(pct: DiscretePMF, deadline: int) -> float:
    """Eq. 1 — probability mass of the completion-time PMF at or before ``deadline``."""
    return float(min(1.0, pct.cdf(int(deadline))))


def success_probability(
    pet: DiscretePMF,
    prev_pct: DiscretePMF,
    deadline: int,
    policy: DroppingPolicy = DroppingPolicy.EVICT,
) -> float:
    """Probability that a task genuinely completes by its deadline.

    Parameters mirror :func:`repro.core.completion.completion_pmf`.  Under
    :class:`DroppingPolicy.NONE` this is Eq. 1 applied to the plain
    convolution.  Under the dropping policies, the task only succeeds when
    the predecessor frees the machine *before* the task's deadline **and**
    the execution finishes by the deadline; mass routed through the dropped
    branches is excluded.
    """
    deadline = int(deadline)
    if policy is DroppingPolicy.NONE:
        return float(min(1.0, pet.convolve(prev_pct).cdf(deadline)))
    started = prev_pct.truncate_before(deadline)
    if started.is_zero():
        return 0.0
    return float(min(1.0, pet.convolve(started).cdf(deadline)))


def queue_success_probabilities(
    pets: Sequence[DiscretePMF],
    deadlines: Sequence[int],
    *,
    start: DiscretePMF,
    policy: DroppingPolicy = DroppingPolicy.EVICT,
    max_impulses: int | None = None,
) -> list[float]:
    """Success probability of every task in a machine queue, head first.

    The chain of availability PMFs is propagated with the requested dropping
    policy (Eqs. 2-5) while each task's own success probability is computed
    from the pre-aggregation branch via :func:`success_probability`.
    """
    if len(pets) != len(deadlines):
        raise ValueError("pets and deadlines must have the same length")
    from .completion import completion_pmf  # local import to avoid cycle confusion

    probs: list[float] = []
    prev = start
    for pet, deadline in zip(pets, deadlines):
        probs.append(success_probability(pet, prev, int(deadline), policy))
        prev = completion_pmf(pet, prev, int(deadline), policy)
        if max_impulses is not None:
            prev = prev.aggregate(max_impulses)
    return probs
