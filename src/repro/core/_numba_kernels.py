"""Jitted inner loops behind :class:`repro.core.kernels.NumbaBackend`.

Numba is an *optional* accelerator dependency: the default install never
imports this module's compiled functions, and the import guard below keeps
``import repro`` working (and the ``numba`` backend cleanly reporting itself
unavailable) on a NumPy-only interpreter.

Bit-exactness
-------------
Both kernels reproduce the NumPy reference accumulation order exactly:

* :func:`ragged_convolve` walks each row's kernel columns in ascending time
  order and skips exact-zero coefficients — in the NumPy path those columns
  contribute ``+= 0.0`` terms, which are bit-level no-ops on the
  non-negative accumulators, so skipping them changes nothing;
* :func:`success_probability_grid` accumulates the start-time reduction
  strictly left to right (the ``np.cumsum`` order of
  :func:`repro.core.batch.sequential_sum`).

Neither kernel contains a floating-point reduction LLVM may legally reorder
(``fastmath`` stays off), so the compiled results are bit-identical
(``atol=0``) to :class:`~repro.core.kernels.NumpyBackend` — the differential
suite in ``tests/core/test_kernel_backends.py`` pins exactly that.

Compilation is lazy: the first call through the backend pays the jit cost
(a few seconds), subsequent calls run the cached machine code.
"""

from __future__ import annotations

try:  # pragma: no cover - absence branch is what the default install runs
    import numba
except ImportError:
    numba = None

NUMBA_AVAILABLE = numba is not None

if NUMBA_AVAILABLE:  # pragma: no cover - compiled code, never traced

    @numba.njit(cache=True, nogil=True)
    def ragged_convolve(probs, coeffs, out):
        """Accumulate ``n`` independent shift-and-add convolutions.

        ``probs`` is the ``(n, width)`` dense operand, ``coeffs`` the
        ``(n, k_width)`` per-row kernel coefficients on their shared grid,
        ``out`` the zero-initialised ``(n, width + k_width - 1)`` result.
        """
        n, width = probs.shape
        k_width = coeffs.shape[1]
        for i in range(n):
            for index in range(k_width):
                coeff = coeffs[i, index]
                if coeff != 0.0:
                    for t in range(width):
                        out[i, index + t] += coeff * probs[i, t]

    @numba.njit(cache=True, nogil=True)
    def success_probability_grid(
        start_times,
        start_probs,
        cdfs,
        cdf_offsets,
        cdf_lengths,
        type_indices,
        machine_indices,
        deadlines,
        out,
    ):
        """Fill the ``(n_tasks, n_machines)`` success-probability grid.

        Mirrors :func:`repro.core.batch.batched_success_probability` pair by
        pair: for every candidate the start-time contributions are summed
        strictly left to right, restricted to start times before the
        deadline with a non-negative clipped CDF budget.
        """
        n_tasks = type_indices.shape[0]
        n_machines = machine_indices.shape[0]
        n_starts = start_times.shape[0]
        for i in range(n_tasks):
            deadline = deadlines[i]
            task_type = type_indices[i]
            for j in range(n_machines):
                machine = machine_indices[j]
                offset = cdf_offsets[task_type, machine]
                last = cdf_lengths[task_type, machine] - 1
                acc = 0.0
                for u in range(n_starts):
                    start = start_times[u]
                    if start >= deadline:
                        continue
                    mass = start_probs[j, u]
                    if mass == 0.0:
                        continue
                    budget = deadline - start - offset
                    if budget < 0:
                        continue
                    if budget > last:
                        budget = last
                    acc += cdfs[task_type, machine, budget] * mass
                if acc > 1.0:
                    acc = 1.0
                out[i, j] = acc

else:
    ragged_convolve = None
    success_probability_grid = None
