"""Regenerate (or verify) the shipped 660-task transcoding reference trace.

The committed ``examples/transcoding_660.trace.json`` is the deterministic
output of :func:`repro.workload.transcoding.reference_transcoding_trace` at
the default seed; this script rewrites it and prints the canonical content
hash so a reviewer can confirm the artefact matches the builder.

Usage::

    PYTHONPATH=src python scripts/make_reference_trace.py [--check]

``--check`` verifies the committed file against the builder output without
writing (exit status 1 on mismatch).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.workload.traces import (  # noqa: E402
    file_content_hash,
    save_trace,
    trace_content_hash,
)
from repro.workload.transcoding import reference_transcoding_trace  # noqa: E402

REFERENCE_PATH = (
    Path(__file__).resolve().parent.parent / "examples" / "transcoding_660.trace.json"
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check",
        action="store_true",
        help="verify the committed file matches the builder instead of writing",
    )
    args = parser.parse_args(argv)

    trace = reference_transcoding_trace()
    expected = trace_content_hash(trace)
    if args.check:
        if not REFERENCE_PATH.exists():
            print(f"missing reference trace: {REFERENCE_PATH}")
            return 1
        actual = file_content_hash(REFERENCE_PATH)
        if actual != expected:
            print(f"reference trace drifted: file {actual} != builder {expected}")
            return 1
        print(f"reference trace OK ({expected})")
        return 0
    path = save_trace(trace, REFERENCE_PATH)
    print(f"wrote {path} ({len(trace)} tasks, sha256 {expected})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
