"""Measure line coverage of ``src/repro`` under the test suite, stdlib-only.

The CI coverage ratchet (``--cov-fail-under`` in ``.github/workflows/ci.yml``)
needs a measured baseline, but the development container does not ship
``coverage``/``pytest-cov``.  This script approximates the same line metric
with ``sys.settrace``: executable lines come from walking each module's
compiled code objects (``co_lines``), executed lines from a trace function
that only pays per-line cost inside ``src/repro``.

It underestimates slightly relative to ``coverage.py`` (subprocess workers
spawned by the parallel-executor tests are not traced here, and no pragma
exclusions apply), which is the safe direction for a ratchet.

Usage::

    python scripts/measure_coverage.py [pytest args...]
    python scripts/measure_coverage.py --dump part1.json tests/core tests/workload
    python scripts/measure_coverage.py --merge part1.json part2.json

Defaults to the whole suite with benchmarks disabled — mirror of the CI
coverage job's invocation.  ``--dump`` writes the executed-line sets to a
JSON file instead of reporting (so long suites can be measured in chunks
within one interpreter lifetime each); ``--merge`` unions previously
dumped chunks into one report without running anything.
"""

from __future__ import annotations

import json
import sys
import threading
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SRC = ROOT / "src"
PACKAGE = SRC / "repro"

sys.path.insert(0, str(SRC))

_executed: dict[str, set[int]] = {}
_prefix = str(PACKAGE) + "/"


def _trace(frame, event, arg):
    filename = frame.f_code.co_filename
    if not filename.startswith(_prefix):
        return None
    lines = _executed.setdefault(filename, set())

    def local(frame, event, arg):
        if event == "line":
            lines.add(frame.f_lineno)
        return local

    if event == "call":
        lines.add(frame.f_lineno)
        return local
    return None


def executable_lines(path: Path) -> set[int]:
    """Line numbers with bytecode, from the compiled module's code objects."""
    code = compile(path.read_text(), str(path), "exec")
    lines: set[int] = set()
    stack = [code]
    while stack:
        obj = stack.pop()
        for _, _, line in obj.co_lines():
            if line is not None:
                lines.add(line)
        for const in obj.co_consts:
            if hasattr(const, "co_lines"):
                stack.append(const)
    # Module docstrings/constants land on line events rarely; keep them —
    # they execute at import and the tracer sees them.
    return lines


def _report() -> None:
    total_executable = 0
    total_hit = 0
    rows = []
    for path in sorted(PACKAGE.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        possible = executable_lines(path)
        hit = _executed.get(str(path), set()) & possible
        total_executable += len(possible)
        total_hit += len(hit)
        pct = 100.0 * len(hit) / len(possible) if possible else 100.0
        rows.append((path.relative_to(SRC), len(possible), len(hit), pct))

    print()
    print(f"{'module':<48} {'lines':>6} {'hit':>6} {'cover':>7}")
    for rel, possible, hit, pct in rows:
        print(f"{str(rel):<48} {possible:>6} {hit:>6} {pct:>6.1f}%")
    overall = 100.0 * total_hit / total_executable if total_executable else 100.0
    print(f"{'TOTAL':<48} {total_executable:>6} {total_hit:>6} {overall:>6.1f}%")
    print(f"\nmeasured line coverage: {overall:.2f}%")


def main() -> int:
    argv = sys.argv[1:]

    if argv and argv[0] == "--merge":
        for dump in argv[1:]:
            for filename, lines in json.loads(Path(dump).read_text()).items():
                _executed.setdefault(filename, set()).update(lines)
        _report()
        return 0

    dump_path: Path | None = None
    if argv and argv[0] == "--dump":
        dump_path = Path(argv[1])
        argv = argv[2:]

    import pytest

    args = argv or ["-q", "--benchmark-disable", "-p", "no:cacheprovider"]
    threading.settrace(_trace)
    sys.settrace(_trace)
    try:
        exit_code = pytest.main(args)
    finally:
        sys.settrace(None)
        threading.settrace(None)

    if dump_path is not None:
        dump_path.write_text(
            json.dumps({k: sorted(v) for k, v in _executed.items()})
        )
        print(f"\ndumped executed lines for {len(_executed)} files -> {dump_path}")
    else:
        _report()
    print(f"(pytest exit {exit_code})")
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
