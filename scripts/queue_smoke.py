"""CI smoke test for the queue execution backend.

Runs a small Figure-4 sweep twice — once serially (``jobs=1``) and once
through :class:`~repro.sweep.backends.QueueBackend` with two detached
``repro worker`` processes — and asserts the results are bit-identical
(atol=0) with identical sweep cache keys.  This is the end-to-end proof
that distributing trials over a durable shared queue changes nothing but
wall-clock time.

Usage::

    PYTHONPATH=src python scripts/queue_smoke.py [--workers N] [--trials N]

Exit status 1 (with a diff summary) on any mismatch.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments.config import ExperimentConfig  # noqa: E402
from repro.experiments.fig4_lambda import run_fig4  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=2, help="detached workers to spawn")
    parser.add_argument("--trials", type=int, default=1, help="trials per sweep point")
    parser.add_argument("--seed", type=int, default=29)
    args = parser.parse_args(argv)

    config = ExperimentConfig(
        trials=args.trials, seed=args.seed, warmup_tasks=5, cooldown_tasks=5, task_scale=0.1
    )
    lambdas = (0.5, 0.9)

    print(f"serial run: fig4 lambdas={lambdas}, trials={args.trials}")
    serial = run_fig4(config, lambdas=lambdas)

    with tempfile.TemporaryDirectory(prefix="queue-smoke-") as scratch:
        queue_dir = Path(scratch) / "queue"
        print(f"queue run: {args.workers} detached workers sharing {queue_dir}")
        queued = run_fig4(
            config,
            lambdas=lambdas,
            backend="queue",
            queue_dir=queue_dir,
            queue_workers=args.workers,
        )

    mismatches = []
    for key, series in serial.series.items():
        if queued.series[key].trials != series.trials:
            mismatches.append(key)
    if mismatches:
        print(f"MISMATCH at {len(mismatches)} point(s): {mismatches}", file=sys.stderr)
        return 1
    for key in sorted(serial.series):
        lam, mode = key
        print(
            f"  lambda={lam:.1f} {mode:<8} robustness "
            f"{serial.series[key].mean_robustness():6.2f}%  (bit-identical)"
        )
    print(f"OK: {len(serial.series)} points bit-identical across backends")
    return 0


if __name__ == "__main__":
    sys.exit(main())
