"""CI smoke test for the online scheduler service.

Starts a scheduler service on a scratch endpoint, replays the first 50
tasks of the reference transcoding trace into it, and asserts that

* the streamed decision outcomes are bit-identical to an offline
  :meth:`HCSimulator.run` replay of the same slice (same mapping, same
  drop set, same on-time flags — atol=0; checked *per shard* for the
  sharded pass), and
* the measured admission latencies are finite (a p99 exists and is a real
  number, i.e. the service actually timed every first decision).

The check runs once per topology:

* per-event heap loop over a Unix socket (``batch_window=0``),
* batched scheduling rounds (``--batch-window``, default 60),
* TCP transport (ephemeral port on 127.0.0.1),
* two sharded engine-worker processes behind one front-end, and
* an overload pass with a one-slot admission inbox, which must reject
  submissions with explicit ``accepted=false`` events — the rejection
  count lands in the bench artefact and the equivalence check replays
  only the accepted subset offline.

A small ``BENCH_serve.json`` is written per pass as a CI artefact (every
pass after the first gets a suffix: ``_w<window>``, ``_tcp``, ``_shard2``,
``_overload``).

Usage::

    python scripts/serve_smoke.py [--tasks N] [--rate R] [--out FILE]
                                  [--batch-window W]

Exit status 1 (with the first divergence) on any mismatch.
"""

from __future__ import annotations

import argparse
import math
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.heuristics import make_heuristic  # noqa: E402
from repro.pet.builders import build_transcoding_pet  # noqa: E402
from repro.serve import run_bench, slice_trace  # noqa: E402
from repro.simulator.engine import SimulatorConfig  # noqa: E402
from repro.workload.traces import load_trace  # noqa: E402

REFERENCE_TRACE = Path(__file__).resolve().parent.parent / "examples" / "transcoding_660.trace.json"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tasks", type=int, default=50, help="trace tasks to replay")
    parser.add_argument("--rate", type=float, default=10.0, help="arrival-rate multiplier")
    parser.add_argument("--seed", type=int, default=2021)
    parser.add_argument("--out", default="BENCH_serve.json", help="bench artefact path")
    parser.add_argument(
        "--batch-window",
        type=int,
        default=60,
        help="round window of the batched-mode pass (0 skips it)",
    )
    args = parser.parse_args(argv)

    trace = slice_trace(load_trace(REFERENCE_TRACE), args.tasks)
    pet = build_transcoding_pet(rng=2019)

    def heuristic_factory():
        return make_heuristic("PAMF", num_task_types=pet.num_task_types)

    # (label, artefact suffix, run_bench overrides, expect rejections)
    passes: list[tuple[str, str, dict, bool]] = [
        ("per-event heap loop", "", {}, False),
    ]
    if args.batch_window:
        passes.append(
            (
                f"batched rounds (W={args.batch_window})",
                f"_w{args.batch_window}",
                {"sim_config": SimulatorConfig(batch_window=args.batch_window)},
                False,
            )
        )
    passes.append(("TCP transport", "_tcp", {"transport": "tcp"}, False))
    passes.append(("2 sharded workers", "_shard2", {"workers": 2}, False))
    passes.append(
        (
            "overload (inbox_limit=4)",
            "_overload",
            {"inbox_limit": 4, "rates": (max(args.rate, 5000.0),)},
            True,
        )
    )

    for mode, suffix, overrides, expect_rejections in passes:
        out = Path(args.out)
        if suffix:
            out = out.with_name(f"{out.stem}{suffix}{out.suffix}")
        print(f"serve smoke [{mode}]: {len(trace)} tasks vs offline replay")
        kwargs = dict(
            heuristic_name="PAMF",
            pet_kind="transcoding",
            seed=args.seed,
            rates=(args.rate,),
            sim_config=SimulatorConfig(batch_window=0),
            check_offline=True,
            out_path=out,
            progress=lambda message: print(f"  {message}"),
        )
        kwargs.update(overrides)
        try:
            report = run_bench(pet, heuristic_factory, trace, **kwargs)
        except RuntimeError as exc:
            print(f"MISMATCH [{mode}]: {exc}", file=sys.stderr)
            return 1

        if report.equivalent_to_offline is not True:
            print(f"MISMATCH [{mode}]: equivalence flag not set", file=sys.stderr)
            return 1
        rate = report.rates[0]
        if not math.isfinite(rate.p99_ms):
            print(f"BAD LATENCY [{mode}]: p99 is {rate.p99_ms!r}", file=sys.stderr)
            return 1
        if expect_rejections and rate.rejected == 0:
            print(
                f"NO BACKPRESSURE [{mode}]: a four-slot inbox rejected nothing "
                f"across {rate.tasks} submissions",
                file=sys.stderr,
            )
            return 1
        print(
            f"  {rate.decisions} decisions in {rate.wall_seconds:.3f}s "
            f"({rate.decisions_per_sec:.0f}/s), admission p50 {rate.p50_ms:.2f}ms "
            f"p99 {rate.p99_ms:.2f}ms, drop rate {100 * rate.drop_rate:.1f}%, "
            f"{rate.rejected} rejected"
        )
        print(f"OK [{mode}]: decision stream matches the offline replay; wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
