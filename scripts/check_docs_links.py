#!/usr/bin/env python3
"""Check that relative links in README.md and docs/*.md resolve.

Scans every Markdown file for ``[text](target)`` links and verifies that
each *relative* target exists on disk (anchors and external ``http(s)``/
``mailto`` links are skipped).  Exits non-zero listing every broken link —
the CI docs job runs this so the documentation satellite cannot rot
silently.

Usage::

    python scripts/check_docs_links.py [repo_root]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Inline Markdown links, excluding images' leading ``!`` capture.
LINK_PATTERN = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def iter_markdown_files(root: Path):
    yield from sorted(root.glob("*.md"))
    docs = root / "docs"
    if docs.is_dir():
        yield from sorted(docs.rglob("*.md"))


def check_file(path: Path, root: Path) -> list[str]:
    errors = []
    for match in LINK_PATTERN.finditer(path.read_text(encoding="utf-8")):
        target = match.group(1)
        if target.startswith(SKIP_PREFIXES):
            continue
        target_path = target.split("#", 1)[0]
        if not target_path:
            continue
        resolved = (path.parent / target_path).resolve()
        if not resolved.exists():
            errors.append(f"{path.relative_to(root)}: broken link -> {target}")
    return errors


def main(argv: list[str]) -> int:
    root = Path(argv[1]).resolve() if len(argv) > 1 else Path(__file__).resolve().parent.parent
    errors: list[str] = []
    checked = 0
    for md_file in iter_markdown_files(root):
        checked += 1
        errors.extend(check_file(md_file, root))
    if errors:
        print("\n".join(errors), file=sys.stderr)
        print(f"{len(errors)} broken link(s) in {checked} file(s)", file=sys.stderr)
        return 1
    print(f"OK: {checked} Markdown file(s), all relative links resolve")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
