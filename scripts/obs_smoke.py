"""CI smoke test for the observability layer at scale.

Runs the seeded 2k-task scale trial (the ``ScaleTraceConfig`` workload of
the scale benchmarks, PAMF on the 12x8 SPEC PET) under a live
:class:`~repro.obs.Telemetry`, replays a slice of the same trace through
:class:`~repro.serve.SchedulerCore` so serve admission is traced too, and
asserts that

* the run was actually observed: spans exist for engine mapping events,
  kernel calls, ScoreTable fills and serve admissions, and the engine
  event counters match the trace size;
* the exported Chrome trace file loads back as JSON and contains those
  span families (the artefact a developer would open in ``about:tracing``
  or Perfetto);
* the tracing never perturbed the trial: an untraced run of the same
  seeds produces an identical task outcome signature.

Artefacts (CI uploads all three):

* ``obs_trace.json`` — Chrome trace-event file of the traced run,
* ``obs_snapshot.json`` — flat counters/gauges/timings snapshot,
* ``BENCH_obs.json`` — headline numbers (tasks, spans, wall seconds).

Usage::

    python scripts/obs_smoke.py [--tasks N] [--serve-tasks N] [--out-dir D]

Exit status 1 (with the failed check) on any assertion.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.heuristics import make_heuristic  # noqa: E402
from repro.obs import (  # noqa: E402
    Telemetry,
    snapshot,
    use_telemetry,
    write_chrome_trace,
    write_snapshot,
)
from repro.pet.builders import build_spec_pet  # noqa: E402
from repro.serve import SchedulerCore  # noqa: E402
from repro.simulator.engine import simulate  # noqa: E402
from repro.workload.scale import (  # noqa: E402
    SCALE_TRACE_SEED,
    ScaleTraceConfig,
    generate_scale_trace,
)


def _signature(result) -> tuple:
    return tuple(
        (t.task_id, t.status.value, t.machine, t.mapped_at, t.exec_start, t.exec_end)
        for t in result.tasks
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tasks", type=int, default=2000, help="scale-trace tasks")
    parser.add_argument(
        "--serve-tasks", type=int, default=100, help="tasks replayed through serve"
    )
    parser.add_argument("--out-dir", default=".", help="artefact directory")
    args = parser.parse_args(argv)
    out_dir = Path(args.out_dir)

    pet = build_spec_pet(rng=SCALE_TRACE_SEED)
    trace = generate_scale_trace(
        ScaleTraceConfig(num_tasks=args.tasks), rng=SCALE_TRACE_SEED, pet=pet
    )

    def run_trial():
        heuristic = make_heuristic("PAMF", num_task_types=pet.num_task_types)
        return simulate(pet, heuristic, trace, rng=SCALE_TRACE_SEED)

    telemetry = Telemetry()
    started = time.perf_counter()
    with use_telemetry(telemetry):
        traced_result = run_trial()

        core = SchedulerCore(
            pet,
            make_heuristic("PAMF", num_task_types=pet.num_task_types),
            rng=SCALE_TRACE_SEED,
        )
        for spec in trace.tasks[: args.serve_tasks]:
            core.submit(spec)
        core.close()
    traced_seconds = time.perf_counter() - started

    untraced_result = run_trial()
    if _signature(traced_result) != _signature(untraced_result):
        print("FAIL: tracing perturbed the scale trial", file=sys.stderr)
        return 1

    span_names = {name for name, *_ in telemetry.spans}
    required = {
        "engine.mapping_event": lambda n: n.startswith("engine.mapping_event."),
        "kernel call": lambda n: n.startswith("kernel."),
        "score_table.fill": lambda n: n == "score_table.fill",
        "serve.admission": lambda n: n == "serve.admission",
    }
    for label, match in required.items():
        if not any(match(name) for name in span_names):
            print(f"FAIL: no {label} span recorded", file=sys.stderr)
            return 1

    arrivals = telemetry.counters.get("engine.events.arrival", 0)
    # The simulate() run sees every trace task; the serve replay adds its
    # slice on top of the same registry.
    expected_arrivals = args.tasks + min(args.serve_tasks, args.tasks)
    if arrivals != expected_arrivals:
        print(
            f"FAIL: engine.events.arrival={arrivals}, expected {expected_arrivals}",
            file=sys.stderr,
        )
        return 1

    trace_path = write_chrome_trace(telemetry, out_dir / "obs_trace.json")
    snapshot_path = write_snapshot(telemetry, out_dir / "obs_snapshot.json")

    document = json.loads(trace_path.read_text())
    exported = {e["name"] for e in document["traceEvents"] if e.get("ph") == "X"}
    for label, match in required.items():
        if not any(match(name) for name in exported):
            print(f"FAIL: Chrome trace missing {label} spans", file=sys.stderr)
            return 1

    snap = snapshot(telemetry)
    bench = {
        "tasks": args.tasks,
        "serve_tasks": args.serve_tasks,
        "traced_seconds": round(traced_seconds, 3),
        "us_per_task": round(traced_seconds / args.tasks * 1e6, 1),
        "spans_recorded": len(telemetry.spans),
        "spans_dropped": telemetry.dropped_spans,
        "trace_events": len(document["traceEvents"]),
        "mapping_events": snap["counters"].get("engine.mapping_events", 0),
        "serve_admissions": snap["counters"].get("serve.submitted", 0),
        "robustness_percent": round(
            traced_result.robustness_percent(warmup=20, cooldown=20), 2
        ),
    }
    bench_path = out_dir / "BENCH_obs.json"
    bench_path.write_text(json.dumps(bench, indent=2, sort_keys=True) + "\n")

    print(f"obs smoke OK: {bench}")
    print(f"artefacts: {trace_path}, {snapshot_path}, {bench_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
